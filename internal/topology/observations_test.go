package topology

import (
	"testing"
	"time"

	"repro/internal/rng"
)

func TestPartitionByObservationsEmpty(t *testing.T) {
	if _, err := PartitionByObservations(nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := PartitionByObservations([][]time.Duration{{}}); err == nil {
		t.Error("worker without observations should error")
	}
}

// homogeneousObs generates iid observations for n workers.
func homogeneousObs(n, window int, mean, spread time.Duration, seed int64) [][]time.Duration {
	src := rng.New(seed)
	obs := make([][]time.Duration, n)
	for w := range obs {
		s := src.Split(w)
		obs[w] = make([]time.Duration, window)
		for i := range obs[w] {
			obs[w][i] = mean + time.Duration(s.Uniform(-float64(spread), float64(spread)))
		}
	}
	return obs
}

func TestObservationsHomogeneousOneGroup(t *testing.T) {
	obs := homogeneousObs(8, 32, 140*time.Millisecond, 30*time.Millisecond, 1)
	groups, err := PartitionByObservations(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("homogeneous cluster split into %d groups", len(groups))
	}
}

func TestObservationsLongTailNotSplit(t *testing.T) {
	// LSTM-like: identical lognormal distributions with huge variance
	// must not be split on sampling noise.
	src := rng.New(3)
	obs := make([][]time.Duration, 8)
	for w := range obs {
		s := src.Split(w)
		obs[w] = make([]time.Duration, 32)
		for i := range obs[w] {
			ms := s.LogNormalFromMoments(610, 380)
			obs[w][i] = time.Duration(ms * float64(time.Millisecond))
		}
	}
	groups, err := PartitionByObservations(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("iid long-tail cluster split into %d groups", len(groups))
	}
}

func TestObservationsMixedSplitsAtBoundary(t *testing.T) {
	// The paper's mixed cluster: half the workers carry a persistent
	// +50-100ms slowdown on ~165ms iterations.
	src := rng.New(5)
	obs := make([][]time.Duration, 8)
	for w := range obs {
		s := src.Split(w)
		obs[w] = make([]time.Duration, 32)
		for i := range obs[w] {
			d := 140*time.Millisecond + time.Duration(s.Uniform(0, 50e6))
			if w >= 4 {
				d += time.Duration(s.Uniform(50e6, 100e6))
			}
			obs[w][i] = d
		}
	}
	groups, err := PartitionByObservations(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("mixed cluster split into %d groups: %+v", len(groups), groups)
	}
	for _, w := range groups[0].Members {
		if w >= 4 {
			t.Errorf("slow worker %d landed in the fast group", w)
		}
	}
	for _, w := range groups[1].Members {
		if w < 4 {
			t.Errorf("fast worker %d landed in the slow group", w)
		}
	}
}

func TestObservationsThreeBands(t *testing.T) {
	obs := make([][]time.Duration, 6)
	bands := []time.Duration{50, 50, 200, 200, 800, 800}
	for w := range obs {
		obs[w] = make([]time.Duration, 16)
		for i := range obs[w] {
			obs[w][i] = bands[w] * time.Millisecond
		}
	}
	groups, err := PartitionByObservations(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("three-band cluster split into %d groups: %+v", len(groups), groups)
	}
}

func TestObservationsSingleton(t *testing.T) {
	groups, err := PartitionByObservations([][]time.Duration{{time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Size() != 1 {
		t.Fatalf("singleton = %+v", groups)
	}
}

func TestObservationsCoverAllWorkers(t *testing.T) {
	src := rng.New(7)
	obs := make([][]time.Duration, 12)
	for w := range obs {
		s := src.Split(w)
		obs[w] = make([]time.Duration, 8)
		for i := range obs[w] {
			base := time.Duration(50+100*(w%3)) * time.Millisecond
			obs[w][i] = base + time.Duration(s.Uniform(0, 5e6))
		}
	}
	groups, err := PartitionByObservations(obs)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 12)
	for _, g := range groups {
		for _, w := range g.Members {
			if seen[w] {
				t.Fatalf("worker %d in two groups", w)
			}
			seen[w] = true
		}
	}
	for w, s := range seen {
		if !s {
			t.Errorf("worker %d missing from partition", w)
		}
	}
}
