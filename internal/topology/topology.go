// Package topology provides the communication topologies RNA uses: the
// logical ring of Ring AllReduce and the recursive partition-and-group
// algorithm of Section 4 that splits a heterogeneous cluster into
// speed-homogeneous AllReduce groups coordinated by a parameter server.
package topology

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Ring is a logical ring over n workers. Worker i sends to its left
// neighbor (i+1 mod n) and receives from its right neighbor (i-1 mod n),
// matching the scatter-and-gather description in Section 2.2.
type Ring struct {
	n int
}

// NewRing returns a ring over n workers; n must be positive.
func NewRing(n int) (Ring, error) {
	if n <= 0 {
		return Ring{}, fmt.Errorf("topology: ring of %d workers", n)
	}
	return Ring{n: n}, nil
}

// Size returns the number of workers in the ring.
func (r Ring) Size() int { return r.n }

// Left returns the worker that i sends to.
func (r Ring) Left(i int) int { return (i + 1) % r.n }

// Right returns the worker that i receives from.
func (r Ring) Right(i int) int { return ((i-1)%r.n + r.n) % r.n }

// Group is one AllReduce group in the hierarchical scheme. Members are
// global worker IDs.
type Group struct {
	Members []int
}

// Size returns the group's member count.
func (g Group) Size() int { return len(g.Members) }

// ErrNoWorkers is returned when partitioning an empty worker set.
var ErrNoWorkers = errors.New("topology: no workers")

// PartitionByspeed implements the ζ > v rule of Section 4: if the gap
// between the fastest and slowest per-iteration times (ζ) exceeds the mean
// per-iteration time (v), split workers into a faster and a slower subset
// at the mean and recurse into each subset until ζ ≤ v holds inside every
// group. stepTimes[i] is worker i's characteristic per-iteration time.
//
// The returned groups partition all workers; member lists are sorted. With
// a homogeneous cluster the result is a single group.
func PartitionBySpeed(stepTimes []time.Duration) ([]Group, error) {
	if len(stepTimes) == 0 {
		return nil, ErrNoWorkers
	}
	ids := make([]int, len(stepTimes))
	for i := range ids {
		ids[i] = i
	}
	groups := partition(ids, stepTimes, 0)
	for _, g := range groups {
		sort.Ints(g.Members)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Members[0] < groups[j].Members[0] })
	return groups, nil
}

// maxPartitionDepth bounds the recursion; 2^30 groups is beyond any real
// cluster, so hitting the bound means degenerate input, and we stop
// splitting rather than recurse forever.
const maxPartitionDepth = 30

func partition(ids []int, stepTimes []time.Duration, depth int) []Group {
	if len(ids) <= 1 || depth >= maxPartitionDepth {
		return []Group{{Members: append([]int(nil), ids...)}}
	}
	var (
		sum      time.Duration
		min, max = stepTimes[ids[0]], stepTimes[ids[0]]
	)
	for _, id := range ids {
		t := stepTimes[id]
		sum += t
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	mean := sum / time.Duration(len(ids))
	zeta := max - min
	if zeta <= mean {
		return []Group{{Members: append([]int(nil), ids...)}}
	}
	var fast, slow []int
	for _, id := range ids {
		if stepTimes[id] > mean {
			slow = append(slow, id)
		} else {
			fast = append(fast, id)
		}
	}
	// A degenerate split (everything on one side) cannot happen when
	// zeta > mean >= 0 except for pathological inputs; guard anyway.
	if len(fast) == 0 || len(slow) == 0 {
		return []Group{{Members: append([]int(nil), ids...)}}
	}
	out := partition(fast, stepTimes, depth+1)
	out = append(out, partition(slow, stepTimes, depth+1)...)
	return out
}

// PartitionByObservations applies the grouping rule of Section 4 to
// profiled per-task times: obs[w] holds worker w's observed task durations
// over the profiling window. The cluster is split when the gap ζ between
// the fastest and slowest *per-worker mean* is both (a) statistically
// significant against the within-worker variability (ζ > 4·SE, so a
// long-tailed but identically distributed workload like LSTM/UCF101 is not
// split on sampling noise) and (b) material against the mean iteration
// time (ζ > v/4, the paper's ζ > v intent at the deterministic-slowdown
// scale the mixed cluster exhibits). Splitting recurses inside each subset
// until neither condition holds.
func PartitionByObservations(obs [][]time.Duration) ([]Group, error) {
	if len(obs) == 0 {
		return nil, ErrNoWorkers
	}
	for w, o := range obs {
		if len(o) == 0 {
			return nil, fmt.Errorf("topology: worker %d has no observations", w)
		}
	}
	ids := make([]int, len(obs))
	for i := range ids {
		ids[i] = i
	}
	groups := partitionObs(ids, obs, 0)
	for _, g := range groups {
		sort.Ints(g.Members)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Members[0] < groups[j].Members[0] })
	return groups, nil
}

func partitionObs(ids []int, obs [][]time.Duration, depth int) []Group {
	if len(ids) <= 1 || depth >= maxPartitionDepth {
		return []Group{{Members: append([]int(nil), ids...)}}
	}
	// Per-worker means and within-worker variance.
	means := make(map[int]float64, len(ids))
	var overall, withinVar float64
	minMean, maxMean := math.Inf(1), math.Inf(-1)
	window := 0
	for _, id := range ids {
		var sum float64
		for _, t := range obs[id] {
			sum += float64(t)
		}
		m := sum / float64(len(obs[id]))
		means[id] = m
		overall += m
		var ss float64
		for _, t := range obs[id] {
			d := float64(t) - m
			ss += d * d
		}
		withinVar += ss / float64(len(obs[id]))
		if m < minMean {
			minMean = m
		}
		if m > maxMean {
			maxMean = m
		}
		if len(obs[id]) > window {
			window = len(obs[id])
		}
	}
	overall /= float64(len(ids))
	withinVar /= float64(len(ids))
	se := math.Sqrt(withinVar / float64(window))

	zeta := maxMean - minMean
	if zeta <= 4*se || zeta <= overall/4 {
		return []Group{{Members: append([]int(nil), ids...)}}
	}
	var fast, slow []int
	for _, id := range ids {
		if means[id] > overall {
			slow = append(slow, id)
		} else {
			fast = append(fast, id)
		}
	}
	if len(fast) == 0 || len(slow) == 0 {
		return []Group{{Members: append([]int(nil), ids...)}}
	}
	out := partitionObs(fast, obs, depth+1)
	out = append(out, partitionObs(slow, obs, depth+1)...)
	return out
}

// NeedsHierarchy reports whether the ζ > v condition holds over the whole
// cluster, i.e. whether hierarchical synchronization should be enabled.
func NeedsHierarchy(stepTimes []time.Duration) bool {
	if len(stepTimes) <= 1 {
		return false
	}
	var (
		sum      time.Duration
		min, max = stepTimes[0], stepTimes[0]
	)
	for _, t := range stepTimes {
		sum += t
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	mean := sum / time.Duration(len(stepTimes))
	return max-min > mean
}
