package topology

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Skew-proportional chunk partitions.
//
// Multi-level plans (planner.go) handle heterogeneity at the algorithm
// level: group fast islands, bridge them over the slow links. Partition
// handles it at the collective level: keep one flat schedule but size each
// rank's chunk to the speed of the links that have to carry it, so a slow
// rank serves proportionally fewer bytes instead of binding everyone to its
// pace. The planner is deliberately a pure function of its inputs — every
// rank that holds the same rate snapshot computes bit-identical weights,
// which is what lets a cheap epoch-stamped broadcast of the snapshot stand
// in for full plan agreement.

// DefaultPartitionFloor is the default minimum chunk size in elements. It
// matches the collective's segment floor: a chunk below this is pure framing
// overhead no matter how slow its owner's link is.
const DefaultPartitionFloor = 1024

// Partition is a skew-proportional chunk partition plan: per-rank relative
// speeds plus the safety bounds the partitioner applies. The zero value is
// not valid; build one with NewPartition.
type Partition struct {
	// Weights are the per-rank relative speeds (mean-normalized; all
	// positive). len(Weights) is the rank count.
	Weights []float64
	// FloorElems is the minimum chunk size in elements (0 = none).
	FloorElems int
	// MaxSkew is the largest-to-smallest chunk ratio allowed (<1 selects
	// tensor.DefaultMaxSkew).
	MaxSkew float64
	// Epoch identifies the observation snapshot the weights came from; the
	// plan exchange stamps it on the wire so ranks can verify they schedule
	// from the same snapshot.
	Epoch int64
}

// NewPartition builds a partition plan from per-rank speed estimates
// (bytes/sec; entries ≤ 0 mean "unobserved" and are treated as the mean of
// the observed ranks, i.e. neutral). The result is deterministic: equal
// inputs give equal weights, and an all-unobserved (or uniform) rate vector
// yields the uniform partition.
func NewPartition(rates []float64, floorElems int, maxSkew float64) (*Partition, error) {
	n := len(rates)
	if n <= 0 {
		return nil, fmt.Errorf("topology: partition over %d ranks", n)
	}
	w := make([]float64, n)
	var sum float64
	observed := 0
	for _, r := range rates {
		if r > 0 && !math.IsInf(r, 1) {
			sum += r
			observed++
		}
	}
	if observed == 0 {
		for i := range w {
			w[i] = 1
		}
		return &Partition{Weights: w, FloorElems: floorElems, MaxSkew: maxSkew}, nil
	}
	mean := sum / float64(observed)
	for i, r := range rates {
		if r > 0 && !math.IsInf(r, 1) {
			w[i] = r / mean
		} else {
			w[i] = 1
		}
	}
	return &Partition{Weights: w, FloorElems: floorElems, MaxSkew: maxSkew}, nil
}

// Ranks returns the rank count the partition covers.
func (p *Partition) Ranks() int { return len(p.Weights) }

// Sizes returns the chunk sizes for a total-element vector under the plan.
func (p *Partition) Sizes(total int) ([]int, error) {
	return tensor.WeightedSizes(total, p.Weights, p.FloorElems, p.MaxSkew)
}

// Offsets returns the n+1 chunk offsets for a total-element vector, or an
// error if the weights are invalid.
func (p *Partition) Offsets(total int) ([]int, error) {
	sizes, err := p.Sizes(total)
	if err != nil {
		return nil, err
	}
	return tensor.WeightedOffsets(sizes), nil
}

// Uniform reports whether the plan degenerates to the equal partition for
// every vector length — true when all weights are equal, which lets the
// caller fall back to the unweighted (bit-identical, pooled) schedule.
func (p *Partition) Uniform() bool {
	for _, w := range p.Weights[1:] {
		if w != p.Weights[0] {
			return false
		}
	}
	return true
}

// Skew returns the largest-to-smallest weight ratio (1 for uniform plans).
func (p *Partition) Skew() float64 {
	lo, hi := p.Weights[0], p.Weights[0]
	for _, w := range p.Weights[1:] {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	if lo <= 0 {
		return math.Inf(1)
	}
	return hi / lo
}

// OutRatesInto fills dst with each rank's mean observed outgoing bandwidth
// in bytes/sec (0 = no outgoing link of that rank observed) and returns it,
// growing dst only when too small — the pooled snapshot the re-planning
// loop takes every iteration instead of materializing a fresh n×n matrix.
func (o *LinkObservations) OutRatesInto(dst []float64) []float64 {
	if cap(dst) < o.n {
		dst = make([]float64, o.n)
	}
	dst = dst[:o.n]
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := 0; i < o.n; i++ {
		var sum float64
		cnt := 0
		for j := 0; j < o.n; j++ {
			if i == j {
				continue
			}
			if ns := o.links[i*o.n+j].nsPerByte; ns > 0 {
				sum += 1e9 / ns
				cnt++
			}
		}
		if cnt > 0 {
			dst[i] = sum / float64(cnt)
		} else {
			dst[i] = 0
		}
	}
	return dst
}
