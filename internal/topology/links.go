package topology

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Per-link observations.
//
// The planner needs to know how fast each (from, to) pair actually moves
// bytes. Raw sample accumulation is the wrong store for that: a long-running
// job observes every link thousands of times, and a link whose speed CHANGED
// (VM migration, congestion shift, failed NIC bonding leg) would be anchored
// to its stale history forever while the slice grows without bound. Link
// state is therefore an exponentially weighted moving average: O(1) memory
// per link, and old samples age out with a configurable half-life.

// DefaultLinkHalfLife is the sample half-life of the EWMAs: after this many
// fresh observations, a stale reading's influence has decayed to 50%.
const DefaultLinkHalfLife = 16.0

// link is one directed pair's EWMA state.
type link struct {
	// nsPerByte and latencyNs are the EWMA estimates; weight is the
	// effective sample mass (saturates at the EWMA horizon), used to tell
	// "observed" from "never probed".
	nsPerByte float64
	latencyNs float64
	weight    float64
}

// LinkObservations aggregates per-link bandwidth/latency measurements with
// EWMA aging. All methods are safe for concurrent use; collectives can feed
// it from per-rank goroutines.
type LinkObservations struct {
	mu    sync.Mutex
	n     int
	decay float64 // per-sample blend factor α: new = (1−α)·old + α·x
	links []link  // n·n, row-major [from][to]
}

// NewLinkObservations returns an empty aggregator for an n-rank fabric.
func NewLinkObservations(n int) (*LinkObservations, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: link observations over %d ranks", n)
	}
	o := &LinkObservations{n: n, links: make([]link, n*n)}
	o.SetHalfLife(DefaultLinkHalfLife)
	return o, nil
}

// Size returns the rank count the aggregator covers.
func (o *LinkObservations) Size() int { return o.n }

// SetHalfLife sets the EWMA half-life in samples: a past observation's
// weight halves every `samples` fresh observations. Values ≤ 0 reset to the
// default.
func (o *LinkObservations) SetHalfLife(samples float64) {
	if samples <= 0 {
		samples = DefaultLinkHalfLife
	}
	o.mu.Lock()
	o.decay = 1 - math.Exp2(-1/samples)
	o.mu.Unlock()
}

func (o *LinkObservations) idx(from, to int) (int, error) {
	if from < 0 || from >= o.n || to < 0 || to >= o.n || from == to {
		return 0, fmt.Errorf("topology: link %d→%d of %d ranks", from, to, o.n)
	}
	return from*o.n + to, nil
}

// ObserveTransfer records that `bytes` payload bytes moved from→to in d.
// Transfers below ~1 KiB carry more fixed cost than stream throughput and
// should be recorded with ObserveLatency instead; they are folded into the
// latency EWMA here when bytes is small.
func (o *LinkObservations) ObserveTransfer(from, to int, bytes int64, d time.Duration) error {
	i, err := o.idx(from, to)
	if err != nil {
		return err
	}
	if bytes <= 0 || d <= 0 {
		return fmt.Errorf("topology: transfer of %d bytes in %v", bytes, d)
	}
	if bytes < 1024 {
		return o.ObserveLatency(from, to, d)
	}
	o.mu.Lock()
	o.blend(&o.links[i].nsPerByte, float64(d.Nanoseconds())/float64(bytes), o.links[i].weight)
	o.bumpWeight(i)
	o.mu.Unlock()
	return nil
}

// ObserveLatency records a fixed-cost (small message) delivery time for
// from→to.
func (o *LinkObservations) ObserveLatency(from, to int, d time.Duration) error {
	i, err := o.idx(from, to)
	if err != nil {
		return err
	}
	if d <= 0 {
		return fmt.Errorf("topology: latency %v", d)
	}
	o.mu.Lock()
	o.blend(&o.links[i].latencyNs, float64(d.Nanoseconds()), o.links[i].weight)
	o.bumpWeight(i)
	o.mu.Unlock()
	return nil
}

// blend folds x into the EWMA at *p. The first sample (zero weight) seeds
// the average directly so the estimate is never dragged toward zero.
func (o *LinkObservations) blend(p *float64, x, weight float64) {
	if weight == 0 || *p == 0 {
		*p = x
		return
	}
	*p = (1-o.decay)**p + o.decay*x
}

// bumpWeight advances the link's effective sample mass toward its horizon
// 1/decay (where it saturates — the EWMA's memory is finite by design).
func (o *LinkObservations) bumpWeight(i int) {
	o.links[i].weight = (1-o.decay)*o.links[i].weight + 1
}

// Observed reports whether the pair has been measured at all.
func (o *LinkObservations) Observed(from, to int) bool {
	i, err := o.idx(from, to)
	if err != nil {
		return false
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.links[i].weight > 0
}

// Bandwidth returns the link's estimated bandwidth in bytes/sec, or 0 when
// no transfer has been observed.
func (o *LinkObservations) Bandwidth(from, to int) float64 {
	i, err := o.idx(from, to)
	if err != nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.links[i].nsPerByte == 0 {
		return 0
	}
	return 1e9 / o.links[i].nsPerByte
}

// Latency returns the link's estimated fixed delivery cost, or 0 when no
// small-message observation exists.
func (o *LinkObservations) Latency(from, to int) time.Duration {
	i, err := o.idx(from, to)
	if err != nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return time.Duration(o.links[i].latencyNs)
}

// BandwidthMatrix materializes the current estimates as an n×n matrix in
// bytes/sec (0 = unobserved, diagonal 0) — the planner's input format.
func (o *LinkObservations) BandwidthMatrix() [][]float64 {
	return o.BandwidthMatrixInto(nil)
}

// BandwidthMatrixInto is BandwidthMatrix writing into dst, reallocating only
// when dst's shape doesn't fit. A planner that re-plans every iteration
// passes the previous snapshot back in and the copy becomes allocation-free;
// the rows of a grown snapshot share one flat backing array, so the
// steady-state cost is one memcpy-shaped loop under the lock.
func (o *LinkObservations) BandwidthMatrixInto(dst [][]float64) [][]float64 {
	if len(dst) != o.n || cap(dst[0]) < o.n {
		dst = make([][]float64, o.n)
		flat := make([]float64, o.n*o.n)
		for i := range dst {
			dst[i] = flat[i*o.n : (i+1)*o.n]
		}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := range dst {
		row := dst[i][:o.n]
		dst[i] = row
		for j := 0; j < o.n; j++ {
			if i == j {
				row[j] = 0
				continue
			}
			if ns := o.links[i*o.n+j].nsPerByte; ns > 0 {
				row[j] = 1e9 / ns
			} else {
				row[j] = 0
			}
		}
	}
	return dst
}
