// Package parallel provides the bounded worker pool behind every CPU-bound
// fan-out in the repository: per-round gradient computation in the training
// engine, deferred gradient futures in AD-PSGD, and whole-simulation
// concurrency in the experiment drivers.
//
// All layers share one global token bucket sized to GOMAXPROCS, so nesting
// (an experiment running many simulations, each fanning out per-worker
// gradients) never oversubscribes the machine. Acquisition is strictly
// non-blocking and the caller always participates in its own work, which
// makes nested fan-outs deadlock-free by construction: when no tokens are
// available the work simply runs on the calling goroutine.
//
// The pool makes no ordering promises. Callers that need determinism must
// write results into index-addressed slots and merge them in a fixed order
// afterwards — which is exactly how the training engine stays bit-identical
// to its serial counterpart.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// tokens is the global bucket bounding extra worker goroutines. Capacity
// GOMAXPROCS-1: the calling goroutine is always one of the workers, so with
// a full bucket the process runs at most GOMAXPROCS CPU-bound goroutines
// per concurrent call tree.
var tokens = make(chan struct{}, maxTokens())

func maxTokens() int {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 0 {
		n = 0
	}
	return n
}

// tryAcquire takes a worker token without blocking.
func tryAcquire() bool {
	select {
	case tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a worker token.
func release() { <-tokens }

// Workers returns the maximum number of goroutines a fan-out may use
// (callers plus helper tokens) — GOMAXPROCS at process start.
func Workers() int { return cap(tokens) + 1 }

// For runs fn(i) for every i in [0, n), fanning out over the global pool.
// The caller participates; up to limit-1 extra goroutines are spawned while
// tokens are available (limit <= 0 means no extra cap beyond the pool).
// For returns only after every invocation completed. Invocation order is
// unspecified; fn must be safe for concurrent calls with distinct i.
func For(limit, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	helpers := n - 1
	if limit > 0 && limit-1 < helpers {
		helpers = limit - 1
	}
	if n == 1 || helpers <= 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	work := func() {
		for {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for h := 0; h < helpers; h++ {
		if !tryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer release()
			work()
		}()
	}
	work()
	wg.Wait()
}

// Task is a unit of deferred work started with Spawn. Exactly one of two
// things happens: the function runs on a pooled goroutine before Wait, or
// it runs synchronously inside Wait. Either way the function's effects are
// visible to the caller after Wait returns.
type Task struct {
	fn   func()
	done chan struct{}
}

// Spawn starts fn on the pool if a token is free; otherwise the work is
// deferred until Wait. fn must not itself call Wait on this task.
func Spawn(fn func()) *Task {
	t := &Task{fn: fn}
	if tryAcquire() {
		t.done = make(chan struct{})
		go func() {
			defer release()
			defer close(t.done)
			fn()
		}()
	}
	return t
}

// Wait blocks until the task's function has completed, running it on the
// calling goroutine when no pooled worker picked it up. Wait must be called
// exactly once.
func (t *Task) Wait() {
	if t.done != nil {
		<-t.done
		return
	}
	t.fn()
}
