package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndex(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		hits := make([]int32, n)
		For(0, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, h)
			}
		}
	}
}

func TestForLimitOneIsSerial(t *testing.T) {
	// With limit 1 no helpers are spawned: execution is strictly in-order
	// on the calling goroutine.
	var order []int
	For(1, 10, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("limit-1 execution out of order: %v", order)
		}
	}
}

func TestForNested(t *testing.T) {
	// Nested fan-outs must complete without deadlock and cover all work.
	var total int64
	For(0, 8, func(i int) {
		For(0, 8, func(j int) {
			atomic.AddInt64(&total, 1)
		})
	})
	if total != 64 {
		t.Fatalf("nested total = %d, want 64", total)
	}
}

func TestSpawnWaitRunsExactlyOnce(t *testing.T) {
	var runs int64
	tasks := make([]*Task, 50)
	for i := range tasks {
		tasks[i] = Spawn(func() { atomic.AddInt64(&runs, 1) })
	}
	for _, task := range tasks {
		task.Wait()
	}
	if runs != 50 {
		t.Fatalf("spawned work ran %d times, want 50", runs)
	}
}

func TestSpawnEffectsVisibleAfterWait(t *testing.T) {
	for i := 0; i < 100; i++ {
		x := 0
		task := Spawn(func() { x = 42 })
		task.Wait()
		if x != 42 {
			t.Fatal("task effects not visible after Wait")
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}
