package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitStability(t *testing.T) {
	s1 := New(7).Split(3)
	s2 := New(7).Split(3)
	for i := 0; i < 50; i++ {
		if s1.Float64() != s2.Float64() {
			t.Fatalf("Split(3) streams diverged at draw %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split(0)
	b := root.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("sibling splits produced %d/100 identical draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		x := s.Uniform(2, 5)
		if x < 2 || x >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", x)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(3)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Normal(10, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Errorf("Normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestLogNormalFromMoments(t *testing.T) {
	// The paper's UCF101 stats: mean 186, stddev 97.7.
	s := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.LogNormalFromMoments(186, 97.7)
		if x <= 0 {
			t.Fatalf("lognormal sample %v <= 0", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	stddev := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-186)/186 > 0.03 {
		t.Errorf("lognormal mean = %v, want ~186", mean)
	}
	if math.Abs(stddev-97.7)/97.7 > 0.05 {
		t.Errorf("lognormal stddev = %v, want ~97.7", stddev)
	}
}

func TestLogNormalParamsDegenerate(t *testing.T) {
	mu, sigma := LogNormalParams(-1, 5)
	if mu != 0 || sigma != 0 {
		t.Errorf("LogNormalParams(-1,5) = (%v,%v), want (0,0)", mu, sigma)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(5)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(3)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.1 {
		t.Errorf("Exponential mean = %v, want ~3", mean)
	}
}

func TestTruncUniformNonNegative(t *testing.T) {
	s := New(9)
	for i := 0; i < 1000; i++ {
		if x := s.TruncUniform(-5, 5); x < 0 {
			t.Fatalf("TruncUniform returned %v < 0", x)
		}
	}
}

func TestTruncNormalClamps(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		x := s.TruncNormal(0, 10, -1, 1)
		if x < -1 || x > 1 {
			t.Fatalf("TruncNormal out of bounds: %v", x)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(17)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestChoiceExcludes(t *testing.T) {
	s := New(19)
	for i := 0; i < 1000; i++ {
		if got := s.Choice(5, 2); got == 2 || got < 0 || got >= 5 {
			t.Fatalf("Choice(5,2) = %d", got)
		}
	}
}

func TestChoiceOutOfRangeNot(t *testing.T) {
	s := New(23)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		got := s.Choice(3, -1)
		if got < 0 || got >= 3 {
			t.Fatalf("Choice(3,-1) = %d", got)
		}
		seen[got] = true
	}
	if len(seen) != 3 {
		t.Errorf("Choice(3,-1) never produced all values: %v", seen)
	}
}

func TestChoiceCoversAll(t *testing.T) {
	s := New(29)
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		seen[s.Choice(4, 1)] = true
	}
	for _, want := range []int{0, 2, 3} {
		if !seen[want] {
			t.Errorf("Choice(4,1) never produced %d", want)
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	s := New(31)
	for trial := 0; trial < 200; trial++ {
		got := s.SampleDistinct(10, 3)
		if len(got) != 3 {
			t.Fatalf("SampleDistinct(10,3) returned %d values", len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 10 {
				t.Fatalf("SampleDistinct value %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("SampleDistinct produced duplicate %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctKTooLarge(t *testing.T) {
	s := New(37)
	got := s.SampleDistinct(4, 10)
	if len(got) != 4 {
		t.Fatalf("SampleDistinct(4,10) returned %d values, want 4", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Errorf("SampleDistinct(4,10) values not distinct: %v", got)
	}
}

// Property: SampleDistinct(n,k) always returns min(n,k) distinct in-range
// values.
func TestQuickSampleDistinct(t *testing.T) {
	s := New(41)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%32 + 1
		k := int(kRaw) % 40
		got := s.SampleDistinct(n, k)
		want := k
		if want > n {
			want = n
		}
		if len(got) != want {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Choice(n, not) with valid `not` never returns `not`.
func TestQuickChoice(t *testing.T) {
	s := New(43)
	f := func(nRaw, notRaw uint8) bool {
		n := int(nRaw)%16 + 2
		not := int(notRaw) % n
		got := s.Choice(n, not)
		return got != not && got >= 0 && got < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
