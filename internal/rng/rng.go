// Package rng provides seeded, splittable random number generation and the
// distributions the workload models need (uniform, normal, lognormal,
// exponential, skewed task times). Every simulation in the repository is
// fully deterministic given its root seed.
package rng

import (
	"math"
	"math/rand"
)

// Source is a deterministic random source. It wraps math/rand with the
// samplers used across the library and supports splitting into independent
// per-worker streams.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream. Child streams are stable:
// Split(i) of an identically seeded Source always yields the same stream.
// Typical use is one child per simulated worker.
func (s *Source) Split(i int) *Source {
	return New(Mix(s.seedMix(), i))
}

// Mix deterministically derives a child seed from (seed, i) with
// SplitMix-style mixing, keeping child seeds well separated even for
// consecutive i. Unlike Split it is a pure function: callers that must
// derive streams concurrently (e.g. per-worker model clones) can hold a
// base seed and Mix it without any shared mutable state.
func Mix(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Int63 draws a raw non-negative 63-bit value, advancing the stream by one
// step. It is the seed-capture primitive behind clonable model noise.
func (s *Source) Int63() int64 { return s.r.Int63() }

// seedMix draws a raw value without disturbing distribution state more than
// one step; used only by Split.
func (s *Source) seedMix() int64 {
	return s.r.Int63()
}

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform int in [0,n). n must be positive.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Uniform returns a uniform value in [lo,hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Normal returns a normal sample with the given mean and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// LogNormal returns a sample whose logarithm is Normal(mu, sigma). It is the
// canonical long-tailed distribution for video lengths and batch times.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.r.NormFloat64())
}

// LogNormalFromMoments returns a lognormal sample with the given *arithmetic*
// mean and standard deviation, solving for (mu, sigma) internally. This lets
// workload models match the paper's reported moments directly (e.g. UCF101
// video lengths: mean 186, stddev 97.7).
func (s *Source) LogNormalFromMoments(mean, stddev float64) float64 {
	mu, sigma := LogNormalParams(mean, stddev)
	return s.LogNormal(mu, sigma)
}

// LogNormalParams converts an arithmetic mean/stddev into the (mu, sigma)
// parameters of the underlying normal distribution.
func LogNormalParams(mean, stddev float64) (mu, sigma float64) {
	if mean <= 0 {
		return 0, 0
	}
	v := stddev * stddev
	m2 := mean * mean
	sigma2 := math.Log(1 + v/m2)
	mu = math.Log(mean) - sigma2/2
	return mu, math.Sqrt(sigma2)
}

// Exponential returns an exponential sample with the given mean.
func (s *Source) Exponential(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// TruncUniform returns a uniform sample in [lo,hi) clamped to be
// non-negative; convenient for delay injection where lo may be zero.
func (s *Source) TruncUniform(lo, hi float64) float64 {
	x := s.Uniform(lo, hi)
	if x < 0 {
		return 0
	}
	return x
}

// TruncNormal returns a normal sample clamped to [lo, hi].
func (s *Source) TruncNormal(mean, stddev, lo, hi float64) float64 {
	x := s.Normal(mean, stddev)
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.r.Float64() < p
}

// Choice returns a uniformly chosen index in [0,n) excluding `not`. n must
// be at least 2 when not is within range; used by AD-PSGD neighbor picking.
func (s *Source) Choice(n, not int) int {
	if not < 0 || not >= n {
		return s.Intn(n)
	}
	k := s.Intn(n - 1)
	if k >= not {
		k++
	}
	return k
}

// SampleDistinct returns k distinct uniform indices in [0,n). If k >= n all
// indices are returned (shuffled). Used by the controller's power-of-q
// probing.
func (s *Source) SampleDistinct(n, k int) []int {
	if k >= n {
		return s.Perm(n)
	}
	perm := s.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}
