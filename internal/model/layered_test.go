package model

import (
	"errors"
	"testing"

	"repro/internal/data"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// layeredMLP builds an MLP large enough that layer1Blocks > 1, so the
// emission tests exercise the blocked W1 pass.
func layeredMLP(t *testing.T) (*MLP, tensor.Vector, []int) {
	t.Helper()
	src := rng.New(77)
	ds, err := data.Blobs(src, 5, 32, 20, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMLP(ds, 64) // W1 = 64*32 = 2048 elems
	if err != nil {
		t.Fatal(err)
	}
	params := tensor.New(m.Dim())
	m.Init(src, params)
	batch := []int{0, 7, 13, 22, 41, 63, 80, 99}
	return m, params, batch
}

func TestMLPGradientLayersBitIdentical(t *testing.T) {
	for _, hidden := range []int{3, 17, 64, 200} {
		src := rng.New(int64(100 + hidden))
		ds, err := data.Blobs(src, 4, 11, 12, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMLP(ds, hidden)
		if err != nil {
			t.Fatal(err)
		}
		params := tensor.New(m.Dim())
		m.Init(src, params)
		batch := []int{0, 5, 9, 20, 33, 47}

		ref := tensor.New(m.Dim())
		refLoss, err := m.Gradient(params, ref, batch)
		if err != nil {
			t.Fatal(err)
		}

		grad := tensor.New(m.Dim())
		var emitted []int
		loss, err := m.GradientLayers(params, grad, batch, func(layer int) error {
			emitted = append(emitted, layer)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if loss != refLoss {
			t.Errorf("hidden=%d: loss %v != %v", hidden, loss, refLoss)
		}
		for i := range grad {
			if grad[i] != ref[i] {
				t.Fatalf("hidden=%d: grad[%d] = %v, Gradient gives %v", hidden, i, grad[i], ref[i])
			}
		}

		spans := m.GradientBuckets()
		if err := validateSpans(spans, m.Dim()); err != nil {
			t.Fatalf("hidden=%d: %v", hidden, err)
		}
		if len(emitted) != len(spans) {
			t.Fatalf("hidden=%d: %d emissions for %d spans", hidden, len(emitted), len(spans))
		}
		for i, l := range emitted {
			if l != i {
				t.Errorf("hidden=%d: emission %d reported layer %d", hidden, i, l)
			}
		}
	}
}

// TestMLPEmissionSpansFinal checks the emission contract itself: at the
// moment emit(i) fires, span i of the gradient already holds its final
// value and is never written again.
func TestMLPEmissionSpansFinal(t *testing.T) {
	m, params, batch := layeredMLP(t)
	ref := tensor.New(m.Dim())
	if _, err := m.Gradient(params, ref, batch); err != nil {
		t.Fatal(err)
	}
	spans := m.GradientBuckets()
	grad := tensor.New(m.Dim())
	if _, err := m.GradientLayers(params, grad, batch, func(layer int) error {
		s := spans[layer]
		for i := s.Lo; i < s.Hi; i++ {
			if grad[i] != ref[i] {
				t.Fatalf("layer %d span [%d,%d): grad[%d] = %v not final (want %v)",
					layer, s.Lo, s.Hi, i, grad[i], ref[i])
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMLPGradientLayersEmitError(t *testing.T) {
	m, params, batch := layeredMLP(t)
	grad := tensor.New(m.Dim())
	boom := errors.New("boom")
	calls := 0
	_, err := m.GradientLayers(params, grad, batch, func(int) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestBucketsFallback(t *testing.T) {
	src := rng.New(3)
	q, err := NewQuadratic(src, 9, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	spans := Buckets(q)
	if len(spans) != 1 || spans[0] != (Span{Lo: 0, Hi: 9}) {
		t.Fatalf("flat model spans = %v", spans)
	}
	// GradientEmit on a flat model emits the single span once, at the end,
	// and matches Gradient bitwise.
	ref := tensor.New(q.Dim())
	refLoss, err := q.Gradient(q.Optimum, ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	grad := tensor.New(q.Dim())
	emits := 0
	loss, err := GradientEmit(q, q.Optimum, grad, nil, func(layer int) error {
		emits++
		if layer != 0 {
			t.Errorf("layer = %d", layer)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if emits != 1 {
		t.Errorf("emits = %d", emits)
	}
	if loss != refLoss {
		t.Errorf("loss %v != %v", loss, refLoss)
	}
	for i := range grad {
		if grad[i] != ref[i] {
			t.Fatalf("grad[%d] = %v != %v", i, grad[i], ref[i])
		}
	}
}

func TestPlanBuckets(t *testing.T) {
	// MLP-like emission spans partitioning [0, 80): the top span first,
	// then four 16-element blocks in descending memory order.
	spans := []Span{{64, 80}, {48, 64}, {32, 48}, {16, 32}, {0, 16}}

	t.Run("disabled", func(t *testing.T) {
		plan := PlanBuckets(spans, 0)
		if len(plan) != len(spans) {
			t.Fatalf("plan = %v", plan)
		}
		for i, b := range plan {
			if b.Span != spans[i] || b.LastLayer != i {
				t.Errorf("bucket %d = %+v", i, b)
			}
		}
	})
	t.Run("merge-pairs", func(t *testing.T) {
		// 32 elems * 8 bytes = 256-byte cap: pairs of 16-elem spans merge.
		plan := PlanBuckets(spans, 256)
		want := []Bucket{
			{Span{48, 80}, 1},
			{Span{16, 48}, 3},
			{Span{0, 16}, 4},
		}
		if len(plan) != len(want) {
			t.Fatalf("plan = %v", plan)
		}
		for i := range want {
			if plan[i] != want[i] {
				t.Errorf("bucket %d = %+v, want %+v", i, plan[i], want[i])
			}
		}
		if err := ValidateBuckets(plan, 80); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("merge-all", func(t *testing.T) {
		plan := PlanBuckets(spans, 1<<20)
		if len(plan) != 1 || plan[0].Span != (Span{0, 80}) || plan[0].LastLayer != 4 {
			t.Fatalf("plan = %v", plan)
		}
	})
	t.Run("non-contiguous-never-merges", func(t *testing.T) {
		gap := []Span{{0, 10}, {20, 30}}
		plan := PlanBuckets(gap, 1<<20)
		if len(plan) != 2 {
			t.Fatalf("plan = %v", plan)
		}
	})
	t.Run("deterministic", func(t *testing.T) {
		a := PlanBuckets(spans, 256)
		b := PlanBuckets(spans, 256)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("plan not deterministic")
			}
		}
	})

	// The real MLP plan must partition the parameter vector at every
	// fusion threshold.
	m, _, _ := layeredMLP(t)
	for _, fb := range []int{0, 1, 4096, 1 << 14, 1 << 30} {
		plan := PlanBuckets(m.GradientBuckets(), fb)
		if err := ValidateBuckets(plan, m.Dim()); err != nil {
			t.Fatalf("fusionBytes=%d: %v", fb, err)
		}
		last := -1
		for _, b := range plan {
			if b.LastLayer <= last {
				t.Fatalf("fusionBytes=%d: LastLayer not increasing: %v", fb, plan)
			}
			last = b.LastLayer
		}
	}
}

func TestValidateSpans(t *testing.T) {
	if err := validateSpans([]Span{{0, 5}, {5, 10}}, 10); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]Span{
		{{0, 5}},           // under-cover
		{{0, 5}, {4, 10}},  // overlap (covers 11)
		{{-1, 5}, {5, 11}}, // out of range
		{{5, 5}, {0, 10}},  // empty span
	} {
		if err := validateSpans(bad, 10); err == nil {
			t.Errorf("spans %v accepted", bad)
		}
	}
}
