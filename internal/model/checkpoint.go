package model

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/tensor"
)

// Checkpoint is a serialized model snapshot: the flat parameter vector plus
// the training step it was taken at.
type Checkpoint struct {
	// Step is the synchronization count at snapshot time.
	Step int64
	// Params is the parameter vector.
	Params tensor.Vector
}

// checkpointMagic identifies the file format ("RNAC" + version 1).
var checkpointMagic = [8]byte{'R', 'N', 'A', 'C', 'K', 'P', 'T', 1}

// maxCheckpointParams bounds decoding against corrupt length prefixes
// (1 GiB of float64 parameters).
const maxCheckpointParams = 128 << 20

// WriteCheckpoint serializes a checkpoint to w: magic(8) step(8) len(8)
// params(len*8), all little-endian.
func WriteCheckpoint(w io.Writer, c Checkpoint) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(checkpointMagic[:]); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(c.Step))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(c.Params)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var buf [8]byte
	for _, p := range c.Params {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCheckpoint deserializes a checkpoint from r.
func ReadCheckpoint(r io.Reader) (Checkpoint, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return Checkpoint{}, fmt.Errorf("checkpoint: read magic: %w", err)
	}
	if magic != checkpointMagic {
		return Checkpoint{}, errors.New("checkpoint: bad magic (not a checkpoint file)")
	}
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Checkpoint{}, fmt.Errorf("checkpoint: read header: %w", err)
	}
	c := Checkpoint{Step: int64(binary.LittleEndian.Uint64(hdr[0:]))}
	n := binary.LittleEndian.Uint64(hdr[8:])
	if n > maxCheckpointParams {
		return Checkpoint{}, fmt.Errorf("checkpoint: %d params exceeds limit", n)
	}
	c.Params = tensor.New(int(n))
	raw := make([]byte, 8*1024)
	for i := 0; i < int(n); {
		want := (int(n) - i) * 8
		if want > len(raw) {
			want = len(raw)
		}
		if _, err := io.ReadFull(r, raw[:want]); err != nil {
			return Checkpoint{}, fmt.Errorf("checkpoint: read params: %w", err)
		}
		for off := 0; off < want; off += 8 {
			c.Params[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
			i++
		}
	}
	return c, nil
}

// SaveCheckpoint writes a checkpoint atomically to path (write to a
// temporary file in the same directory, then rename).
func SaveCheckpoint(path string, c Checkpoint) error {
	tmp, err := os.CreateTemp(dirOf(path), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if err := WriteCheckpoint(tmp, c); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint from path.
func LoadCheckpoint(path string) (Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("checkpoint: %w", err)
	}
	defer func() { _ = f.Close() }()
	return ReadCheckpoint(bufio.NewReader(f))
}

// dirOf returns the directory containing path ("." when path has none).
func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
