// Package model provides the trainable models used to measure statistical
// efficiency: a noisy quadratic (analytically tractable, used by the
// convergence tests), linear regression, multinomial logistic regression,
// and a one-hidden-layer MLP (non-convex, the stand-in for deep networks).
// All models expose exact gradients over mini-batches; the test suite
// verifies them against finite differences.
//
// The gradient/loss inner loops run on the tensor kernels (Dot/Axpy), and
// per-call scratch comes from pooled workspaces, so a single model instance
// supports the training engine's concurrent per-worker fan-out.
package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// ErrBadBatch is returned when a batch index is out of range.
var ErrBadBatch = errors.New("model: bad batch index")

// Model is a differentiable training objective over a dataset.
//
// Thread safety: Loss, Gradient and Accuracy must be safe to call
// concurrently on a single instance, provided each call owns its params and
// grad vectors. Implementations keep no shared mutable scratch (per-call
// buffers come from pooled workspaces). The one sanctioned exception is
// internal randomness: a model whose Gradient draws noise (Quadratic) holds
// a private stream and additionally implements WorkerCloner; engines that
// fan gradient calls out across simulated workers must give each worker its
// own clone via ForWorker, both for safety and so every worker gets an
// independent, deterministically seeded noise stream.
type Model interface {
	// Dim returns the parameter dimensionality.
	Dim() int
	// Loss returns the mean loss of params over the given example
	// indices of the dataset bound at construction.
	Loss(params tensor.Vector, batch []int) (float64, error)
	// Gradient writes the mean gradient over batch into grad (which
	// must have length Dim) and returns the batch loss.
	Gradient(params, grad tensor.Vector, batch []int) (float64, error)
	// Init writes a reproducible initial parameter vector into params.
	Init(src *rng.Source, params tensor.Vector)
}

// Classifier is a Model that can score classification accuracy.
type Classifier interface {
	Model
	// Accuracy returns top-1 and top-k accuracy of params over batch.
	Accuracy(params tensor.Vector, batch []int, k int) (top1, topK float64, err error)
}

// WorkerCloner is implemented by models with internal mutable state (noise
// streams) that therefore cannot share one instance across concurrently
// running simulated workers.
type WorkerCloner interface {
	Model
	// CloneForWorker returns a model with the same objective but an
	// independent noise stream derived deterministically from the worker
	// index. It is a pure function of the receiver's immutable base
	// seed: concurrent or repeated calls yield identical clones.
	CloneForWorker(worker int) Model
}

// ForWorker returns the model instance simulated worker `worker` should
// compute gradients with: a per-worker clone when m carries internal
// randomness, and m itself for stateless models.
func ForWorker(m Model, worker int) Model {
	if c, ok := m.(WorkerCloner); ok {
		return c.CloneForWorker(worker)
	}
	return m
}

// Quadratic is the noisy strongly convex objective
// f(x) = ½ Σ aᵢ(xᵢ−x*ᵢ)²; Gradient adds N(0, noise²) per coordinate,
// modeling mini-batch gradient variance σ² with an analytic optimum.
// Batches are ignored.
//
// The noise stream is private mutable state: a single Quadratic is safe
// for sequential use only. Concurrent engines take per-worker clones via
// CloneForWorker, each with an independent stream derived from the same
// immutable base seed.
type Quadratic struct {
	// Curvature holds the positive diagonal aᵢ.
	Curvature tensor.Vector
	// Optimum is x*.
	Optimum tensor.Vector
	// Noise is the per-coordinate gradient noise stddev.
	Noise float64

	// noiseSeed is the immutable base of the gradient-noise streams; src
	// is this instance's private stream.
	noiseSeed int64
	src       *rng.Source
}

var _ Model = (*Quadratic)(nil)
var _ WorkerCloner = (*Quadratic)(nil)

// NewQuadratic builds a Quadratic with curvatures log-spaced in
// [1, condition] (condition number controls hardness) and a random optimum.
func NewQuadratic(src *rng.Source, dim int, condition, noise float64) (*Quadratic, error) {
	if dim < 1 {
		return nil, fmt.Errorf("model: quadratic dim %d", dim)
	}
	if condition < 1 {
		return nil, fmt.Errorf("model: condition %v < 1", condition)
	}
	noiseSeed := rng.Mix(src.Int63(), 1)
	q := &Quadratic{
		Curvature: tensor.New(dim),
		Optimum:   tensor.New(dim),
		Noise:     noise,
		noiseSeed: noiseSeed,
		src:       rng.New(noiseSeed),
	}
	for i := range q.Curvature {
		frac := 0.0
		if dim > 1 {
			frac = float64(i) / float64(dim-1)
		}
		q.Curvature[i] = math.Pow(condition, frac)
		q.Optimum[i] = src.Normal(0, 1)
	}
	return q, nil
}

// CloneForWorker implements WorkerCloner: the clone shares the (read-only)
// curvature and optimum but owns a noise stream seeded purely from
// (noiseSeed, worker), so cloning mutates nothing and is itself
// concurrency-safe.
func (q *Quadratic) CloneForWorker(worker int) Model {
	seed := rng.Mix(q.noiseSeed, worker+1)
	return &Quadratic{
		Curvature: q.Curvature,
		Optimum:   q.Optimum,
		Noise:     q.Noise,
		noiseSeed: seed,
		src:       rng.New(seed),
	}
}

// Dim implements Model.
func (q *Quadratic) Dim() int { return len(q.Curvature) }

// Loss implements Model. The batch is ignored.
func (q *Quadratic) Loss(params tensor.Vector, _ []int) (float64, error) {
	if len(params) != q.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	var loss float64
	for i, a := range q.Curvature {
		d := params[i] - q.Optimum[i]
		loss += 0.5 * a * d * d
	}
	return loss, nil
}

// Gradient implements Model: ∇f + noise.
func (q *Quadratic) Gradient(params, grad tensor.Vector, _ []int) (float64, error) {
	if len(params) != q.Dim() || len(grad) != q.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	var loss float64
	for i, a := range q.Curvature {
		d := params[i] - q.Optimum[i]
		loss += 0.5 * a * d * d
		grad[i] = a*d + q.src.Normal(0, q.Noise)
	}
	return loss, nil
}

// Init implements Model: a unit Gaussian start away from the optimum.
func (q *Quadratic) Init(src *rng.Source, params tensor.Vector) {
	for i := range params {
		params[i] = q.Optimum[i] + src.Normal(0, 2)
	}
}

// LinearRegression is mean-squared-error linear regression over a Dataset
// (params = weights ++ bias). Stateless: safe for concurrent use.
type LinearRegression struct {
	ds *data.Dataset
}

var _ Model = (*LinearRegression)(nil)

// NewLinearRegression binds the model to a regression dataset.
func NewLinearRegression(ds *data.Dataset) (*LinearRegression, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("model: empty dataset")
	}
	return &LinearRegression{ds: ds}, nil
}

// Dim implements Model.
func (m *LinearRegression) Dim() int { return m.ds.Features + 1 }

func (m *LinearRegression) predict(params tensor.Vector, x tensor.Vector) float64 {
	return params[m.ds.Features] + tensor.Dot(params[:m.ds.Features], x)
}

// Loss implements Model: ½·mean squared error.
func (m *LinearRegression) Loss(params tensor.Vector, batch []int) (float64, error) {
	if len(params) != m.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	if len(batch) == 0 {
		return 0, errors.New("model: empty batch")
	}
	var loss float64
	for _, idx := range batch {
		if idx < 0 || idx >= m.ds.Len() {
			return 0, fmt.Errorf("%w: %d", ErrBadBatch, idx)
		}
		ex := m.ds.Examples[idx]
		r := m.predict(params, ex.X) - ex.Target
		loss += 0.5 * r * r
	}
	return loss / float64(len(batch)), nil
}

// Gradient implements Model. Per-example contributions accumulate in batch
// order via the fused Axpy kernel.
func (m *LinearRegression) Gradient(params, grad tensor.Vector, batch []int) (float64, error) {
	if len(params) != m.Dim() || len(grad) != m.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	if len(batch) == 0 {
		return 0, errors.New("model: empty batch")
	}
	grad.Zero()
	var loss float64
	inv := 1 / float64(len(batch))
	gw := grad[:m.ds.Features]
	for _, idx := range batch {
		if idx < 0 || idx >= m.ds.Len() {
			return 0, fmt.Errorf("%w: %d", ErrBadBatch, idx)
		}
		ex := m.ds.Examples[idx]
		r := m.predict(params, ex.X) - ex.Target
		loss += 0.5 * r * r
		tensor.Axpy(gw, r*inv, ex.X)
		grad[m.ds.Features] += r * inv
	}
	return loss * inv, nil
}

// Init implements Model.
func (m *LinearRegression) Init(src *rng.Source, params tensor.Vector) {
	for i := range params {
		params[i] = src.Normal(0, 0.1)
	}
}
