// Package model provides the trainable models used to measure statistical
// efficiency: a noisy quadratic (analytically tractable, used by the
// convergence tests), linear regression, multinomial logistic regression,
// and a one-hidden-layer MLP (non-convex, the stand-in for deep networks).
// All models expose exact gradients over mini-batches; the test suite
// verifies them against finite differences.
package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// ErrBadBatch is returned when a batch index is out of range.
var ErrBadBatch = errors.New("model: bad batch index")

// Model is a differentiable training objective over a dataset.
type Model interface {
	// Dim returns the parameter dimensionality.
	Dim() int
	// Loss returns the mean loss of params over the given example
	// indices of the dataset bound at construction.
	Loss(params tensor.Vector, batch []int) (float64, error)
	// Gradient writes the mean gradient over batch into grad (which
	// must have length Dim) and returns the batch loss.
	Gradient(params, grad tensor.Vector, batch []int) (float64, error)
	// Init writes a reproducible initial parameter vector into params.
	Init(src *rng.Source, params tensor.Vector)
}

// Classifier is a Model that can score classification accuracy.
type Classifier interface {
	Model
	// Accuracy returns top-1 and top-k accuracy of params over batch.
	Accuracy(params tensor.Vector, batch []int, k int) (top1, topK float64, err error)
}

// Quadratic is the noisy strongly convex objective
// f(x) = ½ Σ aᵢ(xᵢ−x*ᵢ)²; Gradient adds N(0, noise²) per coordinate,
// modeling mini-batch gradient variance σ² with an analytic optimum.
// Batches are ignored.
type Quadratic struct {
	// Curvature holds the positive diagonal aᵢ.
	Curvature tensor.Vector
	// Optimum is x*.
	Optimum tensor.Vector
	// Noise is the per-coordinate gradient noise stddev.
	Noise float64

	src *rng.Source
}

var _ Model = (*Quadratic)(nil)

// NewQuadratic builds a Quadratic with curvatures log-spaced in
// [1, condition] (condition number controls hardness) and a random optimum.
func NewQuadratic(src *rng.Source, dim int, condition, noise float64) (*Quadratic, error) {
	if dim < 1 {
		return nil, fmt.Errorf("model: quadratic dim %d", dim)
	}
	if condition < 1 {
		return nil, fmt.Errorf("model: condition %v < 1", condition)
	}
	q := &Quadratic{
		Curvature: tensor.New(dim),
		Optimum:   tensor.New(dim),
		Noise:     noise,
		src:       src.Split(1),
	}
	for i := range q.Curvature {
		frac := 0.0
		if dim > 1 {
			frac = float64(i) / float64(dim-1)
		}
		q.Curvature[i] = math.Pow(condition, frac)
		q.Optimum[i] = src.Normal(0, 1)
	}
	return q, nil
}

// Dim implements Model.
func (q *Quadratic) Dim() int { return len(q.Curvature) }

// Loss implements Model. The batch is ignored.
func (q *Quadratic) Loss(params tensor.Vector, _ []int) (float64, error) {
	if len(params) != q.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	var loss float64
	for i, a := range q.Curvature {
		d := params[i] - q.Optimum[i]
		loss += 0.5 * a * d * d
	}
	return loss, nil
}

// Gradient implements Model: ∇f + noise.
func (q *Quadratic) Gradient(params, grad tensor.Vector, _ []int) (float64, error) {
	if len(params) != q.Dim() || len(grad) != q.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	var loss float64
	for i, a := range q.Curvature {
		d := params[i] - q.Optimum[i]
		loss += 0.5 * a * d * d
		grad[i] = a*d + q.src.Normal(0, q.Noise)
	}
	return loss, nil
}

// Init implements Model: a unit Gaussian start away from the optimum.
func (q *Quadratic) Init(src *rng.Source, params tensor.Vector) {
	for i := range params {
		params[i] = q.Optimum[i] + src.Normal(0, 2)
	}
}

// LinearRegression is mean-squared-error linear regression over a Dataset
// (params = weights ++ bias).
type LinearRegression struct {
	ds *data.Dataset
}

var _ Model = (*LinearRegression)(nil)

// NewLinearRegression binds the model to a regression dataset.
func NewLinearRegression(ds *data.Dataset) (*LinearRegression, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("model: empty dataset")
	}
	return &LinearRegression{ds: ds}, nil
}

// Dim implements Model.
func (m *LinearRegression) Dim() int { return m.ds.Features + 1 }

func (m *LinearRegression) predict(params tensor.Vector, x tensor.Vector) float64 {
	y := params[m.ds.Features]
	for j, xj := range x {
		y += params[j] * xj
	}
	return y
}

// Loss implements Model: ½·mean squared error.
func (m *LinearRegression) Loss(params tensor.Vector, batch []int) (float64, error) {
	if len(params) != m.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	if len(batch) == 0 {
		return 0, errors.New("model: empty batch")
	}
	var loss float64
	for _, idx := range batch {
		if idx < 0 || idx >= m.ds.Len() {
			return 0, fmt.Errorf("%w: %d", ErrBadBatch, idx)
		}
		ex := m.ds.Examples[idx]
		r := m.predict(params, ex.X) - ex.Target
		loss += 0.5 * r * r
	}
	return loss / float64(len(batch)), nil
}

// Gradient implements Model.
func (m *LinearRegression) Gradient(params, grad tensor.Vector, batch []int) (float64, error) {
	if len(params) != m.Dim() || len(grad) != m.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	if len(batch) == 0 {
		return 0, errors.New("model: empty batch")
	}
	grad.Zero()
	var loss float64
	inv := 1 / float64(len(batch))
	for _, idx := range batch {
		if idx < 0 || idx >= m.ds.Len() {
			return 0, fmt.Errorf("%w: %d", ErrBadBatch, idx)
		}
		ex := m.ds.Examples[idx]
		r := m.predict(params, ex.X) - ex.Target
		loss += 0.5 * r * r
		for j, xj := range ex.X {
			grad[j] += r * xj * inv
		}
		grad[m.ds.Features] += r * inv
	}
	return loss * inv, nil
}

// Init implements Model.
func (m *LinearRegression) Init(src *rng.Source, params tensor.Vector) {
	for i := range params {
		params[i] = src.Normal(0, 0.1)
	}
}
