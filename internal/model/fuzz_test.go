package model

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

// FuzzReadCheckpoint feeds arbitrary bytes to the checkpoint decoder: no
// panics, bounded allocation, and every accepted decode must round-trip.
func FuzzReadCheckpoint(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, Checkpoint{Step: 7, Params: tensor.FromSlice([]float64{1, 2})}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:10])
	f.Add([]byte("RNACKPT\x01garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteCheckpoint(&out, c); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadCheckpoint(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Step != c.Step || len(back.Params) != len(c.Params) {
			t.Fatalf("round trip mismatch: %+v vs %+v", back, c)
		}
	})
}
