package model

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	c := Checkpoint{Step: 42, Params: tensor.FromSlice([]float64{1.5, -2.25, math.Pi, 0})}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 42 {
		t.Errorf("step = %d", got.Step)
	}
	if !got.Params.Equal(c.Params, 0) {
		t.Errorf("params = %v", got.Params)
	}
}

func TestCheckpointEmptyParams(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, Checkpoint{Step: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Params) != 0 {
		t.Errorf("params = %v", got.Params)
	}
}

func TestCheckpointBadMagic(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("NOTACKPT12345678901234567890"))); err == nil {
		t.Error("bad magic should error")
	}
	if _, err := ReadCheckpoint(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should error")
	}
}

func TestCheckpointTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, Checkpoint{Step: 1, Params: tensor.New(10)}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadCheckpoint(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated params should error")
	}
	if _, err := ReadCheckpoint(bytes.NewReader(raw[:12])); err == nil {
		t.Error("truncated header should error")
	}
}

func TestCheckpointHugeLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, Checkpoint{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Forge a huge param count.
	for i := 16; i < 24; i++ {
		raw[i] = 0xFF
	}
	if _, err := ReadCheckpoint(bytes.NewReader(raw)); err == nil {
		t.Error("forged length should error")
	}
}

func TestSaveLoadCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	c := Checkpoint{Step: 7, Params: tensor.FromSlice([]float64{9, 8, 7})}
	if err := SaveCheckpoint(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 7 || !got.Params.Equal(c.Params, 0) {
		t.Errorf("loaded = %+v", got)
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("dir entries = %d, want 1", len(entries))
	}
	// Overwrite works (atomic rename path).
	c.Step = 8
	if err := SaveCheckpoint(path, c); err != nil {
		t.Fatal(err)
	}
	got, err = LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 8 {
		t.Errorf("overwritten step = %d", got.Step)
	}
}

func TestLoadCheckpointMissing(t *testing.T) {
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Error("missing file should error")
	}
}

func TestDirOf(t *testing.T) {
	if got := dirOf("a/b/c.ckpt"); got != "a/b" {
		t.Errorf("dirOf = %q", got)
	}
	if got := dirOf("c.ckpt"); got != "." {
		t.Errorf("dirOf = %q", got)
	}
}

// Property: round trip preserves arbitrary parameter vectors exactly
// (including NaN payloads bit-for-bit at the float64 level is not required;
// NaNs compare unequal, so skip them).
func TestQuickCheckpointRoundTrip(t *testing.T) {
	f := func(step int64, raw []float64) bool {
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, Checkpoint{Step: step, Params: raw}); err != nil {
			return false
		}
		got, err := ReadCheckpoint(&buf)
		if err != nil {
			return false
		}
		if got.Step != step || len(got.Params) != len(raw) {
			return false
		}
		for i := range raw {
			if got.Params[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
