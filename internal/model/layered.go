package model

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// Layer-aware gradients for comm/compute overlap.
//
// A blocking data-parallel step computes the whole gradient, then reduces
// it: the network idles during backprop and the CPU idles during the
// collective. Overlap needs the backward pass to hand out finished pieces
// early — in reverse layer order, since backprop finalizes the output
// layer's gradient first — so the reducer can put them on the wire while
// earlier layers are still computing. LayeredModel is that contract; flat
// models fall back to a single whole-vector bucket (no overlap, same
// result).

// Span is a contiguous half-open range [Lo, Hi) of the flat parameter
// vector.
type Span struct {
	Lo, Hi int
}

// Len returns the number of parameters in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// LayeredModel is a Model whose backward pass can emit gradient spans as
// they finish, in reverse layer order.
type LayeredModel interface {
	Model
	// GradientBuckets returns the emission spans of the parameter vector,
	// in the order GradientLayers finalizes them. The spans partition
	// [0, Dim()) and are a pure function of the model architecture, so
	// every SPMD rank computes the same list.
	GradientBuckets() []Span
	// GradientLayers computes the batch gradient exactly like Gradient —
	// bit-identical grad and loss — but calls emit(i) as soon as span i of
	// GradientBuckets is fully accumulated and will not be written again.
	// A non-nil error from emit aborts the pass.
	GradientLayers(params, grad tensor.Vector, batch []int, emit func(layer int) error) (float64, error)
}

// Buckets returns m's gradient emission spans: a LayeredModel reports its
// own, any other model degrades to one whole-vector span.
func Buckets(m Model) []Span {
	if lm, ok := m.(LayeredModel); ok {
		return lm.GradientBuckets()
	}
	return []Span{{Lo: 0, Hi: m.Dim()}}
}

// GradientEmit runs the layered backward pass when m supports it and the
// plain gradient otherwise, in which case the single whole-vector span is
// emitted at the end. The emit callback receives indices into Buckets(m).
func GradientEmit(m Model, params, grad tensor.Vector, batch []int, emit func(layer int) error) (float64, error) {
	if lm, ok := m.(LayeredModel); ok {
		return lm.GradientLayers(params, grad, batch, emit)
	}
	loss, err := m.Gradient(params, grad, batch)
	if err != nil {
		return loss, err
	}
	return loss, emit(0)
}

// Bucket is one reduction bucket of the overlap plan: a contiguous
// parameter span plus the emission layer that completes it.
type Bucket struct {
	Span
	// LastLayer is the index (into the emission span list) of the last
	// span merged into this bucket; the bucket is ready for reduction as
	// soon as that layer emits.
	LastLayer int
}

// PlanBuckets coalesces emission spans into reduction buckets holding at
// most fusionBytes bytes (8 per element; fusionBytes <= 0 disables
// coalescing, one bucket per span; a single span larger than the threshold
// keeps its own bucket). Merging is by adjacency IN MEMORY, independent of
// emission order: a span fuses into any open bucket it touches, and a span
// that touches two open buckets bridges them into one. Every bucket is
// therefore a contiguous parameter range that collectives can reduce in
// place, and an unbounded threshold genuinely collapses a partition of the
// vector to one whole-vector bucket — which is what makes the single-bucket
// overlap schedule bit-identical to the legacy whole-vector worker even for
// collectives whose per-element reduction order depends on the element's
// offset (the ring chunks by position; the tree does not). Emission-order
// merging cannot promise that: a backward pass that emits W before its
// bias leaves a hole the pairwise walk never bridges.
//
// Buckets are returned in readiness order — ascending LastLayer, the
// emission layer that completes the bucket (the max over everything merged
// into it) — so the reducer can launch plan[i] the moment layer
// plan[i].LastLayer finalizes.
//
// The plan is a pure function of (spans, fusionBytes): fixed bucket
// boundaries, deterministic order. That is the bit-identity argument for
// the overlap reducer — every rank derives the identical plan from the
// shared model architecture and threshold, each bucket's collective is a
// deterministic function of its inputs, and bucket results land in
// disjoint spans, so launching the collectives concurrently cannot change
// a single bit relative to running them back to back.
func PlanBuckets(spans []Span, fusionBytes int) []Bucket {
	if len(spans) == 0 {
		return nil
	}
	maxElems := 0
	if fusionBytes > 0 {
		maxElems = fusionBytes / 8
		if maxElems < 1 {
			maxElems = 1
		}
	}
	// Open buckets, kept sorted by Lo (spans partition the vector, so
	// adjacency is an exact endpoint match against at most two neighbors).
	open := make([]Bucket, 0, len(spans))
	for layer, s := range spans {
		b := Bucket{Span: s, LastLayer: layer}
		i := sort.Search(len(open), func(i int) bool { return open[i].Lo >= b.Lo })
		if maxElems > 0 {
			// Fuse with the left neighbor first, then the right — the
			// right check sees the already-fused size, so a bridge only
			// happens when all three pieces fit under the cap together.
			if i > 0 && open[i-1].Hi == b.Lo && open[i-1].Len()+b.Len() <= maxElems {
				b.Lo = open[i-1].Lo
				if open[i-1].LastLayer > b.LastLayer {
					b.LastLayer = open[i-1].LastLayer
				}
				open = append(open[:i-1], open[i:]...)
				i--
			}
			if i < len(open) && open[i].Lo == b.Hi && b.Len()+open[i].Len() <= maxElems {
				b.Hi = open[i].Hi
				if open[i].LastLayer > b.LastLayer {
					b.LastLayer = open[i].LastLayer
				}
				open = append(open[:i], open[i+1:]...)
			}
		}
		open = append(open, Bucket{})
		copy(open[i+1:], open[i:])
		open[i] = b
	}
	sort.Slice(open, func(i, j int) bool { return open[i].LastLayer < open[j].LastLayer })
	return open
}

// validateSpans checks that spans partition [0, dim) — used by tests and
// the reducer's startup validation.
func validateSpans(spans []Span, dim int) error {
	seen := 0
	for _, s := range spans {
		if s.Lo < 0 || s.Hi > dim || s.Lo >= s.Hi {
			return fmt.Errorf("model: bad span [%d,%d) of dim %d", s.Lo, s.Hi, dim)
		}
		seen += s.Len()
	}
	if seen != dim {
		return fmt.Errorf("model: spans cover %d of %d parameters", seen, dim)
	}
	return nil
}

// ValidateBuckets checks that a plan's buckets partition [0, dim).
func ValidateBuckets(plan []Bucket, dim int) error {
	spans := make([]Span, len(plan))
	for i, b := range plan {
		spans[i] = b.Span
	}
	return validateSpans(spans, dim)
}
