package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// MLP is a one-hidden-layer tanh network with a softmax output — the
// non-convex objective standing in for the paper's deep models. Parameter
// layout: W1 (H rows of F) ++ b1 (H) ++ W2 (C rows of H) ++ b2 (C).
// Stateless: safe for concurrent use.
type MLP struct {
	ds     *data.Dataset
	hidden int
}

var (
	_ Classifier   = (*MLP)(nil)
	_ LayeredModel = (*MLP)(nil)
)

// NewMLP binds an MLP with the given hidden width to a classification
// dataset.
func NewMLP(ds *data.Dataset, hidden int) (*MLP, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("model: empty dataset")
	}
	if ds.Classes < 2 {
		return nil, fmt.Errorf("model: %d classes", ds.Classes)
	}
	if hidden < 1 {
		return nil, fmt.Errorf("model: hidden width %d", hidden)
	}
	return &MLP{ds: ds, hidden: hidden}, nil
}

// Dim implements Model.
func (m *MLP) Dim() int {
	f, h, c := m.ds.Features, m.hidden, m.ds.Classes
	return h*f + h + c*h + c
}

// Hidden returns the hidden-layer width.
func (m *MLP) Hidden() int { return m.hidden }

// slices carves the flat parameter vector into layer views.
func (m *MLP) slices(params tensor.Vector) (w1, b1, w2, b2 tensor.Vector) {
	f, h, c := m.ds.Features, m.hidden, m.ds.Classes
	o := 0
	w1 = params[o : o+h*f]
	o += h * f
	b1 = params[o : o+h]
	o += h
	w2 = params[o : o+c*h]
	o += c * h
	b2 = params[o : o+c]
	return w1, b1, w2, b2
}

// forward computes hidden activations and logits for one example: each unit
// is one dot product against the example (layer 1) or the activations
// (layer 2).
func (m *MLP) forward(params tensor.Vector, x tensor.Vector, hid, logits []float64) {
	f, h, c := m.ds.Features, m.hidden, m.ds.Classes
	w1, b1, w2, b2 := m.slices(params)
	for j := 0; j < h; j++ {
		hid[j] = math.Tanh(b1[j] + tensor.Dot(w1[j*f:(j+1)*f], x))
	}
	for k := 0; k < c; k++ {
		logits[k] = b2[k] + tensor.Dot(w2[k*h:(k+1)*h], hid)
	}
}

// Loss implements Model.
func (m *MLP) Loss(params tensor.Vector, batch []int) (float64, error) {
	if len(params) != m.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	if len(batch) == 0 {
		return 0, errors.New("model: empty batch")
	}
	ws := getWorkspace()
	defer ws.release()
	ws.hid = grow(ws.hid, m.hidden)
	ws.probs = grow(ws.probs, m.ds.Classes)
	hid, probs := ws.hid, ws.probs
	var loss float64
	for _, idx := range batch {
		if idx < 0 || idx >= m.ds.Len() {
			return 0, fmt.Errorf("%w: %d", ErrBadBatch, idx)
		}
		ex := m.ds.Examples[idx]
		m.forward(params, ex.X, hid, probs)
		softmaxInPlace(probs)
		p := probs[ex.Label]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	return loss / float64(len(batch)), nil
}

// Gradient implements Model (exact backprop). Row updates and the hidden
// delta accumulation run through the fused Axpy kernel; examples accumulate
// in batch order.
func (m *MLP) Gradient(params, grad tensor.Vector, batch []int) (float64, error) {
	if len(params) != m.Dim() || len(grad) != m.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	if len(batch) == 0 {
		return 0, errors.New("model: empty batch")
	}
	grad.Zero()
	f, h, c := m.ds.Features, m.hidden, m.ds.Classes
	_, _, w2, _ := m.slices(params)
	gw1, gb1, gw2, gb2 := m.slices(grad)
	ws := getWorkspace()
	defer ws.release()
	ws.hid = grow(ws.hid, h)
	ws.probs = grow(ws.probs, c)
	ws.deltaH = grow(ws.deltaH, h)
	hid, probs, deltaH := ws.hid, ws.probs, ws.deltaH
	inv := 1 / float64(len(batch))
	var loss float64
	for _, idx := range batch {
		if idx < 0 || idx >= m.ds.Len() {
			return 0, fmt.Errorf("%w: %d", ErrBadBatch, idx)
		}
		ex := m.ds.Examples[idx]
		m.forward(params, ex.X, hid, probs)
		softmaxInPlace(probs)
		p := probs[ex.Label]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)

		for j := range deltaH {
			deltaH[j] = 0
		}
		for k := 0; k < c; k++ {
			d := probs[k]
			if k == ex.Label {
				d--
			}
			tensor.Axpy(gw2[k*h:(k+1)*h], d*inv, hid)
			tensor.Axpy(deltaH, d, w2[k*h:(k+1)*h])
			gb2[k] += d * inv
		}
		for j := 0; j < h; j++ {
			dh := deltaH[j] * (1 - hid[j]*hid[j])
			tensor.Axpy(gw1[j*f:(j+1)*f], dh*inv, ex.X)
			gb1[j] += dh * inv
		}
	}
	return loss * inv, nil
}

// mlpEmitElems is the target W1 elements per emission block (~128 KiB):
// fine enough that the overlap reducer can put early blocks on the wire
// while later ones compute, coarse enough that per-block loop overhead
// stays negligible.
const mlpEmitElems = 16384

// mlpMaxEmitBlocks caps the W1 block count.
const mlpMaxEmitBlocks = 16

// layer1Blocks returns how many row blocks the layered backward splits W1
// into — a pure function of the architecture, so every rank agrees.
func (m *MLP) layer1Blocks() int {
	r := m.hidden * m.ds.Features / mlpEmitElems
	if r < 1 {
		r = 1
	}
	if r > mlpMaxEmitBlocks {
		r = mlpMaxEmitBlocks
	}
	if r > m.hidden {
		r = m.hidden
	}
	return r
}

// GradientBuckets implements LayeredModel. Backprop finalizes the output
// layer first, so emission order is W2++b2, then W1 in row blocks from the
// top of the parameter range downward (adjacent emitted spans stay
// memory-contiguous for bucket coalescing), and finally b1, which is
// accumulated alongside the W1 blocks and certain only once all of them
// are done.
func (m *MLP) GradientBuckets() []Span {
	f, h := m.ds.Features, m.hidden
	hf := h * f
	spans := make([]Span, 0, m.layer1Blocks()+2)
	spans = append(spans, Span{Lo: hf + h, Hi: m.Dim()}) // W2 ++ b2
	R := m.layer1Blocks()
	for blk := R - 1; blk >= 0; blk-- {
		lo, hi, _ := tensor.ChunkBounds(h, R, blk)
		spans = append(spans, Span{Lo: lo * f, Hi: hi * f})
	}
	return append(spans, Span{Lo: hf, Hi: hf + h}) // b1
}

// GradientLayers implements LayeredModel: the same exact backprop as
// Gradient — per-element accumulation stays in batch order, so grad and
// loss are bit-identical — restructured into two passes. Pass 1 runs the
// forward and the output layer over the whole batch, stashing each
// example's hidden activations and deltas; W2/b2 are then final and emit.
// Pass 2 replays the stash to accumulate W1 row blocks from the top down,
// emitting each block as it completes, with b1 last.
func (m *MLP) GradientLayers(params, grad tensor.Vector, batch []int, emit func(layer int) error) (float64, error) {
	if len(params) != m.Dim() || len(grad) != m.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	if len(batch) == 0 {
		return 0, errors.New("model: empty batch")
	}
	grad.Zero()
	f, h, c := m.ds.Features, m.hidden, m.ds.Classes
	_, _, w2, _ := m.slices(params)
	gw1, gb1, gw2, gb2 := m.slices(grad)
	ws := getWorkspace()
	defer ws.release()
	ws.hid = grow(ws.hid, h)
	ws.probs = grow(ws.probs, c)
	ws.deltaH = grow(ws.deltaH, h)
	ws.stash = grow(ws.stash, 2*len(batch)*h)
	hid, probs, deltaH := ws.hid, ws.probs, ws.deltaH
	inv := 1 / float64(len(batch))
	var loss float64
	for bi, idx := range batch {
		if idx < 0 || idx >= m.ds.Len() {
			return 0, fmt.Errorf("%w: %d", ErrBadBatch, idx)
		}
		ex := m.ds.Examples[idx]
		m.forward(params, ex.X, hid, probs)
		softmaxInPlace(probs)
		p := probs[ex.Label]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)

		for j := range deltaH {
			deltaH[j] = 0
		}
		for k := 0; k < c; k++ {
			d := probs[k]
			if k == ex.Label {
				d--
			}
			tensor.Axpy(gw2[k*h:(k+1)*h], d*inv, hid)
			tensor.Axpy(deltaH, d, w2[k*h:(k+1)*h])
			gb2[k] += d * inv
		}
		stash := ws.stash[bi*2*h : (bi+1)*2*h]
		copy(stash[:h], hid)
		copy(stash[h:], deltaH)
	}
	if err := emit(0); err != nil {
		return 0, err
	}
	R := m.layer1Blocks()
	for blk := R - 1; blk >= 0; blk-- {
		lo, hi, _ := tensor.ChunkBounds(h, R, blk)
		for bi, idx := range batch {
			ex := m.ds.Examples[idx]
			stash := ws.stash[bi*2*h : (bi+1)*2*h]
			for j := lo; j < hi; j++ {
				dh := stash[h+j] * (1 - stash[j]*stash[j])
				tensor.Axpy(gw1[j*f:(j+1)*f], dh*inv, ex.X)
				gb1[j] += dh * inv
			}
		}
		if err := emit(R - blk); err != nil {
			return 0, err
		}
	}
	if err := emit(R + 1); err != nil {
		return 0, err
	}
	return loss * inv, nil
}

// Init implements Model: Xavier-style scaled Gaussians.
func (m *MLP) Init(src *rng.Source, params tensor.Vector) {
	f, h := m.ds.Features, m.hidden
	w1, b1, w2, b2 := m.slices(params)
	s1 := 1 / math.Sqrt(float64(f))
	for i := range w1 {
		w1[i] = src.Normal(0, s1)
	}
	b1.Zero()
	s2 := 1 / math.Sqrt(float64(h))
	for i := range w2 {
		w2[i] = src.Normal(0, s2)
	}
	b2.Zero()
}

// Accuracy implements Classifier.
func (m *MLP) Accuracy(params tensor.Vector, batch []int, k int) (float64, float64, error) {
	if len(params) != m.Dim() {
		return 0, 0, tensor.ErrShapeMismatch
	}
	if len(batch) == 0 {
		return 0, 0, errors.New("model: empty batch")
	}
	ws := getWorkspace()
	defer ws.release()
	ws.hid = grow(ws.hid, m.hidden)
	hid := ws.hid
	return accuracy(batch, m.ds, k, func(x tensor.Vector, scores []float64) {
		m.forward(params, x, hid, scores)
	})
}
