package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// MLP is a one-hidden-layer tanh network with a softmax output — the
// non-convex objective standing in for the paper's deep models. Parameter
// layout: W1 (H rows of F) ++ b1 (H) ++ W2 (C rows of H) ++ b2 (C).
type MLP struct {
	ds     *data.Dataset
	hidden int
}

var _ Classifier = (*MLP)(nil)

// NewMLP binds an MLP with the given hidden width to a classification
// dataset.
func NewMLP(ds *data.Dataset, hidden int) (*MLP, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("model: empty dataset")
	}
	if ds.Classes < 2 {
		return nil, fmt.Errorf("model: %d classes", ds.Classes)
	}
	if hidden < 1 {
		return nil, fmt.Errorf("model: hidden width %d", hidden)
	}
	return &MLP{ds: ds, hidden: hidden}, nil
}

// Dim implements Model.
func (m *MLP) Dim() int {
	f, h, c := m.ds.Features, m.hidden, m.ds.Classes
	return h*f + h + c*h + c
}

// Hidden returns the hidden-layer width.
func (m *MLP) Hidden() int { return m.hidden }

// slices carves the flat parameter vector into layer views.
func (m *MLP) slices(params tensor.Vector) (w1, b1, w2, b2 tensor.Vector) {
	f, h, c := m.ds.Features, m.hidden, m.ds.Classes
	o := 0
	w1 = params[o : o+h*f]
	o += h * f
	b1 = params[o : o+h]
	o += h
	w2 = params[o : o+c*h]
	o += c * h
	b2 = params[o : o+c]
	return w1, b1, w2, b2
}

// forward computes hidden activations and logits for one example.
func (m *MLP) forward(params tensor.Vector, x tensor.Vector, hid, logits []float64) {
	f, h, c := m.ds.Features, m.hidden, m.ds.Classes
	w1, b1, w2, b2 := m.slices(params)
	for j := 0; j < h; j++ {
		s := b1[j]
		row := w1[j*f : (j+1)*f]
		for i, xi := range x {
			s += row[i] * xi
		}
		hid[j] = math.Tanh(s)
	}
	for k := 0; k < c; k++ {
		s := b2[k]
		row := w2[k*h : (k+1)*h]
		for j := 0; j < h; j++ {
			s += row[j] * hid[j]
		}
		logits[k] = s
	}
}

// Loss implements Model.
func (m *MLP) Loss(params tensor.Vector, batch []int) (float64, error) {
	if len(params) != m.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	if len(batch) == 0 {
		return 0, errors.New("model: empty batch")
	}
	hid := make([]float64, m.hidden)
	probs := make([]float64, m.ds.Classes)
	var loss float64
	for _, idx := range batch {
		if idx < 0 || idx >= m.ds.Len() {
			return 0, fmt.Errorf("%w: %d", ErrBadBatch, idx)
		}
		ex := m.ds.Examples[idx]
		m.forward(params, ex.X, hid, probs)
		softmaxInPlace(probs)
		p := probs[ex.Label]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	return loss / float64(len(batch)), nil
}

// Gradient implements Model (exact backprop).
func (m *MLP) Gradient(params, grad tensor.Vector, batch []int) (float64, error) {
	if len(params) != m.Dim() || len(grad) != m.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	if len(batch) == 0 {
		return 0, errors.New("model: empty batch")
	}
	grad.Zero()
	f, h, c := m.ds.Features, m.hidden, m.ds.Classes
	_, _, w2, _ := m.slices(params)
	gw1, gb1, gw2, gb2 := m.slices(grad)
	hid := make([]float64, h)
	probs := make([]float64, c)
	deltaH := make([]float64, h)
	inv := 1 / float64(len(batch))
	var loss float64
	for _, idx := range batch {
		if idx < 0 || idx >= m.ds.Len() {
			return 0, fmt.Errorf("%w: %d", ErrBadBatch, idx)
		}
		ex := m.ds.Examples[idx]
		m.forward(params, ex.X, hid, probs)
		softmaxInPlace(probs)
		p := probs[ex.Label]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)

		for j := range deltaH {
			deltaH[j] = 0
		}
		for k := 0; k < c; k++ {
			d := probs[k]
			if k == ex.Label {
				d--
			}
			row := gw2[k*h : (k+1)*h]
			w2row := w2[k*h : (k+1)*h]
			for j := 0; j < h; j++ {
				row[j] += d * hid[j] * inv
				deltaH[j] += d * w2row[j]
			}
			gb2[k] += d * inv
		}
		for j := 0; j < h; j++ {
			dh := deltaH[j] * (1 - hid[j]*hid[j])
			row := gw1[j*f : (j+1)*f]
			for i, xi := range ex.X {
				row[i] += dh * xi * inv
			}
			gb1[j] += dh * inv
		}
	}
	return loss * inv, nil
}

// Init implements Model: Xavier-style scaled Gaussians.
func (m *MLP) Init(src *rng.Source, params tensor.Vector) {
	f, h := m.ds.Features, m.hidden
	w1, b1, w2, b2 := m.slices(params)
	s1 := 1 / math.Sqrt(float64(f))
	for i := range w1 {
		w1[i] = src.Normal(0, s1)
	}
	b1.Zero()
	s2 := 1 / math.Sqrt(float64(h))
	for i := range w2 {
		w2[i] = src.Normal(0, s2)
	}
	b2.Zero()
}

// Accuracy implements Classifier.
func (m *MLP) Accuracy(params tensor.Vector, batch []int, k int) (float64, float64, error) {
	if len(params) != m.Dim() {
		return 0, 0, tensor.ErrShapeMismatch
	}
	if len(batch) == 0 {
		return 0, 0, errors.New("model: empty batch")
	}
	hid := make([]float64, m.hidden)
	return accuracy(batch, m.ds, k, func(x tensor.Vector, scores []float64) {
		m.forward(params, x, hid, scores)
	})
}
