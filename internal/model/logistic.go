package model

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Logistic is multinomial logistic (softmax) regression over a
// classification Dataset. Parameters are laid out as C rows of (F weights)
// followed by C biases: dim = C·F + C. Stateless: safe for concurrent use.
type Logistic struct {
	ds *data.Dataset
}

var _ Classifier = (*Logistic)(nil)

// NewLogistic binds the model to a classification dataset.
func NewLogistic(ds *data.Dataset) (*Logistic, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("model: empty dataset")
	}
	if ds.Classes < 2 {
		return nil, fmt.Errorf("model: %d classes", ds.Classes)
	}
	return &Logistic{ds: ds}, nil
}

// Dim implements Model.
func (m *Logistic) Dim() int { return m.ds.Classes*m.ds.Features + m.ds.Classes }

// logits computes the raw class scores of one example into out: one dot
// product per class row plus the bias.
func (m *Logistic) logits(params tensor.Vector, x tensor.Vector, out []float64) {
	f, c := m.ds.Features, m.ds.Classes
	for k := 0; k < c; k++ {
		out[k] = params[c*f+k] + tensor.Dot(params[k*f:(k+1)*f], x)
	}
}

// softmaxInPlace converts logits to probabilities, numerically stably.
func softmaxInPlace(z []float64) {
	max := z[0]
	for _, v := range z[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range z {
		z[i] = math.Exp(v - max)
		sum += z[i]
	}
	for i := range z {
		z[i] /= sum
	}
}

// Loss implements Model: mean cross-entropy.
func (m *Logistic) Loss(params tensor.Vector, batch []int) (float64, error) {
	if len(params) != m.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	if len(batch) == 0 {
		return 0, errors.New("model: empty batch")
	}
	ws := getWorkspace()
	defer ws.release()
	ws.probs = grow(ws.probs, m.ds.Classes)
	probs := ws.probs
	var loss float64
	for _, idx := range batch {
		if idx < 0 || idx >= m.ds.Len() {
			return 0, fmt.Errorf("%w: %d", ErrBadBatch, idx)
		}
		ex := m.ds.Examples[idx]
		m.logits(params, ex.X, probs)
		softmaxInPlace(probs)
		p := probs[ex.Label]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	return loss / float64(len(batch)), nil
}

// Gradient implements Model. Per-example row updates run through the fused
// Axpy kernel; examples accumulate in batch order.
func (m *Logistic) Gradient(params, grad tensor.Vector, batch []int) (float64, error) {
	if len(params) != m.Dim() || len(grad) != m.Dim() {
		return 0, tensor.ErrShapeMismatch
	}
	if len(batch) == 0 {
		return 0, errors.New("model: empty batch")
	}
	grad.Zero()
	f, c := m.ds.Features, m.ds.Classes
	ws := getWorkspace()
	defer ws.release()
	ws.probs = grow(ws.probs, c)
	probs := ws.probs
	var loss float64
	inv := 1 / float64(len(batch))
	for _, idx := range batch {
		if idx < 0 || idx >= m.ds.Len() {
			return 0, fmt.Errorf("%w: %d", ErrBadBatch, idx)
		}
		ex := m.ds.Examples[idx]
		m.logits(params, ex.X, probs)
		softmaxInPlace(probs)
		p := probs[ex.Label]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		for k := 0; k < c; k++ {
			delta := probs[k]
			if k == ex.Label {
				delta--
			}
			tensor.Axpy(grad[k*f:(k+1)*f], delta*inv, ex.X)
			grad[c*f+k] += delta * inv
		}
	}
	return loss * inv, nil
}

// Init implements Model.
func (m *Logistic) Init(src *rng.Source, params tensor.Vector) {
	for i := range params {
		params[i] = src.Normal(0, 0.01)
	}
}

// Accuracy implements Classifier.
func (m *Logistic) Accuracy(params tensor.Vector, batch []int, k int) (float64, float64, error) {
	if len(params) != m.Dim() {
		return 0, 0, tensor.ErrShapeMismatch
	}
	if len(batch) == 0 {
		return 0, 0, errors.New("model: empty batch")
	}
	return accuracy(batch, m.ds, k, func(x tensor.Vector, scores []float64) {
		m.logits(params, x, scores)
	})
}

// accuracy scores top-1/top-k given a scoring function.
func accuracy(batch []int, ds *data.Dataset, k int, score func(tensor.Vector, []float64)) (float64, float64, error) {
	if k < 1 {
		k = 1
	}
	if k > ds.Classes {
		k = ds.Classes
	}
	ws := getWorkspace()
	defer ws.release()
	ws.probs = grow(ws.probs, ds.Classes)
	ws.order = growInts(ws.order, ds.Classes)
	scores, order := ws.probs, ws.order
	var top1, topK int
	for _, idx := range batch {
		if idx < 0 || idx >= ds.Len() {
			return 0, 0, fmt.Errorf("%w: %d", ErrBadBatch, idx)
		}
		ex := ds.Examples[idx]
		score(ex.X, scores)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
		if order[0] == ex.Label {
			top1++
		}
		for i := 0; i < k; i++ {
			if order[i] == ex.Label {
				topK++
				break
			}
		}
	}
	n := float64(len(batch))
	return float64(top1) / n, float64(topK) / n, nil
}

// All returns the index list [0, n) of a dataset — convenient for
// evaluating loss or accuracy over a whole validation set.
func All(ds *data.Dataset) []int {
	out := make([]int, ds.Len())
	for i := range out {
		out[i] = i
	}
	return out
}
