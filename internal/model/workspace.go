package model

import "sync"

// workspace holds the per-call scratch buffers of the model hot paths
// (hidden activations, class probabilities, backprop deltas, ranking
// order). Calls borrow one from a shared pool instead of allocating —
// or, worse, sharing buffers across goroutines — which is what makes
// Loss/Gradient/Accuracy safe for the engine's concurrent per-worker
// fan-out. Every buffer is fully (re)written before it is read, so pooled
// reuse cannot leak values between calls.
type workspace struct {
	hid    []float64
	probs  []float64
	deltaH []float64
	order  []int
	// stash holds the layered backward pass's per-example activations and
	// deltas (batch × 2·hidden), so the second (layer-1) pass replays them
	// without recomputing the forward.
	stash []float64
}

var wsPool = sync.Pool{New: func() any { return &workspace{} }}

func getWorkspace() *workspace { return wsPool.Get().(*workspace) }

func (ws *workspace) release() { wsPool.Put(ws) }

// grow returns buf resized to n elements, reallocating only when capacity
// is insufficient.
func grow(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// growInts is grow for index buffers.
func growInts(buf []int, n int) []int {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int, n)
}
