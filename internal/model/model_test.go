package model

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// checkGradient verifies Gradient against central finite differences of
// Loss at a random point. Used for every deterministic model.
func checkGradient(t *testing.T, m Model, batch []int, tol float64) {
	t.Helper()
	src := rng.New(1234)
	params := tensor.New(m.Dim())
	m.Init(src, params)
	grad := tensor.New(m.Dim())
	if _, err := m.Gradient(params, grad, batch); err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	// Spot-check a spread of coordinates (all of them for small dims).
	step := 1
	if m.Dim() > 60 {
		step = m.Dim() / 60
	}
	for i := 0; i < m.Dim(); i += step {
		orig := params[i]
		params[i] = orig + h
		lp, err := m.Loss(params, batch)
		if err != nil {
			t.Fatal(err)
		}
		params[i] = orig - h
		lm, err := m.Loss(params, batch)
		if err != nil {
			t.Fatal(err)
		}
		params[i] = orig
		fd := (lp - lm) / (2 * h)
		if math.Abs(fd-grad[i]) > tol*(1+math.Abs(fd)) {
			t.Errorf("coord %d: analytic %v vs finite-diff %v", i, grad[i], fd)
		}
	}
}

func TestQuadratic(t *testing.T) {
	src := rng.New(1)
	q, err := NewQuadratic(src, 10, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Dim() != 10 {
		t.Errorf("Dim = %d", q.Dim())
	}
	// Loss at the optimum is zero.
	loss, err := q.Loss(q.Optimum, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loss != 0 {
		t.Errorf("loss at optimum = %v", loss)
	}
	// Noise-free gradient at optimum is zero.
	grad := tensor.New(10)
	if _, err := q.Gradient(q.Optimum.Clone(), grad, nil); err != nil {
		t.Fatal(err)
	}
	if grad.Norm2() > 1e-12 {
		t.Errorf("gradient at optimum = %v", grad.Norm2())
	}
	checkGradient(t, q, nil, 1e-4)
}

func TestQuadraticConditioning(t *testing.T) {
	src := rng.New(2)
	q, err := NewQuadratic(src, 5, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Curvature[0] != 1 {
		t.Errorf("smallest curvature = %v, want 1", q.Curvature[0])
	}
	if math.Abs(q.Curvature[4]-1000) > 1e-9 {
		t.Errorf("largest curvature = %v, want 1000", q.Curvature[4])
	}
}

func TestQuadraticNoise(t *testing.T) {
	src := rng.New(3)
	q, err := NewQuadratic(src, 4, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	grad := tensor.New(4)
	var mags float64
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := q.Gradient(q.Optimum.Clone(), grad, nil); err != nil {
			t.Fatal(err)
		}
		mags += grad.Norm2() * grad.Norm2()
	}
	// E||noise||² = dim * σ² = 4 * 0.25 = 1.
	if avg := mags / n; math.Abs(avg-1) > 0.15 {
		t.Errorf("gradient noise power = %v, want ~1", avg)
	}
}

func TestQuadraticInvalid(t *testing.T) {
	src := rng.New(1)
	if _, err := NewQuadratic(src, 0, 10, 0); err == nil {
		t.Error("dim 0 should error")
	}
	if _, err := NewQuadratic(src, 5, 0.5, 0); err == nil {
		t.Error("condition < 1 should error")
	}
	q, err := NewQuadratic(src, 3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Loss(tensor.New(2), nil); err == nil {
		t.Error("shape mismatch should error")
	}
	if _, err := q.Gradient(tensor.New(3), tensor.New(2), nil); err == nil {
		t.Error("grad shape mismatch should error")
	}
}

func TestLinearRegressionGradient(t *testing.T) {
	src := rng.New(4)
	ds, _, err := data.LinearData(src, 5, 50, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewLinearRegression(ds)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 6 {
		t.Errorf("Dim = %d, want 6", m.Dim())
	}
	batch := []int{0, 3, 7, 11, 20}
	checkGradient(t, m, batch, 1e-5)
}

func TestLinearRegressionRecoversTruth(t *testing.T) {
	src := rng.New(5)
	ds, truth, err := data.LinearData(src, 4, 500, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewLinearRegression(ds)
	if err != nil {
		t.Fatal(err)
	}
	params := tensor.New(m.Dim())
	m.Init(src, params)
	grad := tensor.New(m.Dim())
	all := All(ds)
	for i := 0; i < 500; i++ {
		if _, err := m.Gradient(params, grad, all); err != nil {
			t.Fatal(err)
		}
		if err := params.Axpy(-0.1, grad); err != nil {
			t.Fatal(err)
		}
	}
	if !params.Equal(truth, 0.05) {
		t.Errorf("GD did not recover truth: got %v, want %v", params, truth)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := NewLinearRegression(nil); err == nil {
		t.Error("nil dataset should error")
	}
	src := rng.New(6)
	ds, _, err := data.LinearData(src, 3, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewLinearRegression(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Loss(tensor.New(m.Dim()), nil); err == nil {
		t.Error("empty batch should error")
	}
	if _, err := m.Loss(tensor.New(m.Dim()), []int{99}); err == nil {
		t.Error("bad index should error")
	}
	g := tensor.New(m.Dim())
	if _, err := m.Gradient(tensor.New(m.Dim()), g, []int{-1}); err == nil {
		t.Error("negative index should error")
	}
}

func TestLogisticGradient(t *testing.T) {
	src := rng.New(7)
	ds, err := data.Blobs(src, 4, 3, 10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewLogistic(ds)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 4*3+4 {
		t.Errorf("Dim = %d, want 16", m.Dim())
	}
	checkGradient(t, m, []int{0, 5, 9, 22, 31}, 1e-5)
}

func TestLogisticLearnsBlobs(t *testing.T) {
	src := rng.New(8)
	ds, err := data.Blobs(src, 3, 5, 100, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewLogistic(ds)
	if err != nil {
		t.Fatal(err)
	}
	params := tensor.New(m.Dim())
	m.Init(src, params)
	grad := tensor.New(m.Dim())
	all := All(ds)
	for i := 0; i < 300; i++ {
		if _, err := m.Gradient(params, grad, all); err != nil {
			t.Fatal(err)
		}
		if err := params.Axpy(-0.5, grad); err != nil {
			t.Fatal(err)
		}
	}
	top1, top2, err := m.Accuracy(params, all, 2)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < 0.95 {
		t.Errorf("top-1 accuracy = %v after training well-separated blobs", top1)
	}
	if top2 < top1 {
		t.Errorf("top-2 (%v) below top-1 (%v)", top2, top1)
	}
}

func TestLogisticErrors(t *testing.T) {
	if _, err := NewLogistic(nil); err == nil {
		t.Error("nil dataset should error")
	}
	src := rng.New(9)
	reg, _, err := data.LinearData(src, 3, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLogistic(reg); err == nil {
		t.Error("regression dataset (0 classes) should error")
	}
}

func TestMLPGradient(t *testing.T) {
	src := rng.New(10)
	ds, err := data.Blobs(src, 3, 4, 8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMLP(ds, 6)
	if err != nil {
		t.Fatal(err)
	}
	wantDim := 6*4 + 6 + 3*6 + 3
	if m.Dim() != wantDim {
		t.Errorf("Dim = %d, want %d", m.Dim(), wantDim)
	}
	if m.Hidden() != 6 {
		t.Errorf("Hidden = %d", m.Hidden())
	}
	checkGradient(t, m, []int{0, 3, 10, 17}, 1e-4)
}

func TestMLPLearnsXorLikeProblem(t *testing.T) {
	// A blob problem with tight clusters; the MLP must fit it well.
	src := rng.New(11)
	ds, err := data.Blobs(src, 4, 2, 50, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMLP(ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	params := tensor.New(m.Dim())
	m.Init(src, params)
	grad := tensor.New(m.Dim())
	all := All(ds)
	for i := 0; i < 400; i++ {
		if _, err := m.Gradient(params, grad, all); err != nil {
			t.Fatal(err)
		}
		if err := params.Axpy(-0.5, grad); err != nil {
			t.Fatal(err)
		}
	}
	top1, _, err := m.Accuracy(params, all, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < 0.9 {
		t.Errorf("MLP top-1 = %v after training", top1)
	}
}

func TestMLPInvalid(t *testing.T) {
	src := rng.New(12)
	ds, err := data.Blobs(src, 2, 2, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMLP(nil, 4); err == nil {
		t.Error("nil dataset should error")
	}
	if _, err := NewMLP(ds, 0); err == nil {
		t.Error("0 hidden should error")
	}
	m, err := NewMLP(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Loss(tensor.New(1), []int{0}); err == nil {
		t.Error("shape mismatch should error")
	}
	if _, _, err := m.Accuracy(tensor.New(m.Dim()), nil, 1); err == nil {
		t.Error("empty accuracy batch should error")
	}
}

func TestLossDecreasesUnderGradientStep(t *testing.T) {
	// Property: for each model, a small step along -grad decreases loss.
	src := rng.New(13)
	ds, err := data.Blobs(src, 3, 4, 20, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	logit, err := NewLogistic(ds)
	if err != nil {
		t.Fatal(err)
	}
	mlp, err := NewMLP(ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := NewQuadratic(src, 8, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	batch := All(ds)
	for _, m := range []Model{logit, mlp, quad} {
		params := tensor.New(m.Dim())
		m.Init(src, params)
		grad := tensor.New(m.Dim())
		before, err := m.Gradient(params, grad, batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := params.Axpy(-1e-3, grad); err != nil {
			t.Fatal(err)
		}
		after, err := m.Loss(params, batch)
		if err != nil {
			t.Fatal(err)
		}
		if after >= before {
			t.Errorf("%T: loss did not decrease (%v -> %v)", m, before, after)
		}
	}
}

func TestAll(t *testing.T) {
	src := rng.New(14)
	ds, err := data.Blobs(src, 2, 2, 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	idx := All(ds)
	if len(idx) != 6 || idx[0] != 0 || idx[5] != 5 {
		t.Errorf("All = %v", idx)
	}
}
