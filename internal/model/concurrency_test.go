package model

import (
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// testModels builds one instance of every dataset-backed model over a shared
// blob problem.
func testModels(t *testing.T) (*data.Dataset, []Model) {
	t.Helper()
	src := rng.New(99)
	ds, err := data.Blobs(src, 3, 4, 8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	logit, err := NewLogistic(ds)
	if err != nil {
		t.Fatal(err)
	}
	mlp, err := NewMLP(ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	reg, _, err := data.LinearData(src, 4, 24, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := NewLinearRegression(reg)
	if err != nil {
		t.Fatal(err)
	}
	return ds, []Model{logit, mlp, lin}
}

// TestGradientFuzzedBatchShapes runs the finite-difference check over the
// batch shapes the training engine actually produces: singletons, batches
// larger than the dataset (sampling with replacement repeats indices), and
// heavy duplication of one example.
func TestGradientFuzzedBatchShapes(t *testing.T) {
	_, models := testModels(t)
	shapes := map[string]func(n int) []int{
		"batch1": func(n int) []int { return []int{n / 2} },
		"overfull": func(n int) []int {
			b := make([]int, 2*n+3)
			for i := range b {
				b[i] = (i * 7) % n
			}
			return b
		},
		"duplicate": func(n int) []int { return []int{0, 0, 0, n - 1, 0} },
	}
	for _, m := range models {
		n := 24
		if l, ok := m.(*Logistic); ok {
			n = l.ds.Len()
		}
		if mp, ok := m.(*MLP); ok {
			n = mp.ds.Len()
		}
		for name, mk := range shapes {
			t.Run(name, func(t *testing.T) {
				checkGradient(t, m, mk(n), 1e-4)
			})
		}
	}
}

// TestGradientEmptyBatchErrors pins the contract for the empty tail of a
// sliced-up dataset: every dataset-backed model rejects a zero-length batch.
func TestGradientEmptyBatchErrors(t *testing.T) {
	_, models := testModels(t)
	for _, m := range models {
		params := tensor.New(m.Dim())
		grad := tensor.New(m.Dim())
		if _, err := m.Gradient(params, grad, nil); err == nil {
			t.Errorf("%T: empty batch should error", m)
		}
		if _, err := m.Loss(params, nil); err == nil {
			t.Errorf("%T: empty-batch loss should error", m)
		}
	}
}

// TestConcurrentGradientsMatchSerial is the Model thread-safety contract:
// many goroutines calling Gradient on ONE instance (each with its own params
// and grad) must reproduce the serial answers exactly. Run with -race.
func TestConcurrentGradientsMatchSerial(t *testing.T) {
	ds, models := testModels(t)
	batches := make([][]int, 16)
	src := rng.New(123)
	for i := range batches {
		batches[i] = ds.Batch(src, 6)
	}
	for _, m := range models {
		params := tensor.New(m.Dim())
		m.Init(rng.New(7), params)
		want := make([]tensor.Vector, len(batches))
		wantLoss := make([]float64, len(batches))
		for i, b := range batches {
			want[i] = tensor.New(m.Dim())
			var err error
			if wantLoss[i], err = m.Gradient(params, want[i], b); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		got := make([]tensor.Vector, len(batches))
		gotLoss := make([]float64, len(batches))
		errs := make([]error, len(batches))
		for i := range batches {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				got[i] = tensor.New(m.Dim())
				gotLoss[i], errs[i] = m.Gradient(params, got[i], batches[i])
			}()
		}
		wg.Wait()
		for i := range batches {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			if gotLoss[i] != wantLoss[i] {
				t.Errorf("%T batch %d: loss %v vs serial %v", m, i, gotLoss[i], wantLoss[i])
			}
			if !got[i].Equal(want[i], 0) {
				t.Errorf("%T batch %d: concurrent gradient differs from serial", m, i)
			}
		}
	}
}

// TestQuadraticCloneForWorker pins the per-worker noise-stream semantics the
// parallel engine relies on.
func TestQuadraticCloneForWorker(t *testing.T) {
	q, err := NewQuadratic(rng.New(42), 6, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	draw := func(m Model) tensor.Vector {
		g := tensor.New(m.Dim())
		if _, err := m.Gradient(q.Optimum.Clone(), g, nil); err != nil {
			t.Fatal(err)
		}
		return g
	}
	// Purity: repeated clones of the same worker replay the same stream,
	// and cloning never advances the parent's stream.
	a := draw(q.CloneForWorker(3))
	b := draw(q.CloneForWorker(3))
	if !a.Equal(b, 0) {
		t.Error("same-worker clones drew different noise")
	}
	// Independence: distinct workers get distinct streams.
	c := draw(q.CloneForWorker(4))
	if a.Equal(c, 0) {
		t.Error("distinct workers share a noise stream")
	}
	// The clone shares the objective itself.
	cl := q.CloneForWorker(1).(*Quadratic)
	if &cl.Curvature[0] != &q.Curvature[0] || &cl.Optimum[0] != &q.Optimum[0] {
		t.Error("clone should share curvature and optimum storage")
	}
	// Cloning concurrently is itself safe (pure function of the base seed).
	var wg sync.WaitGroup
	clones := make([]tensor.Vector, 8)
	for i := range clones {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			clones[i] = draw(q.CloneForWorker(2))
		}()
	}
	wg.Wait()
	for i := 1; i < len(clones); i++ {
		if !clones[0].Equal(clones[i], 0) {
			t.Error("concurrent same-worker clones diverged")
		}
	}
	// ForWorker passes stateless models through unchanged.
	ds, models := testModels(t)
	_ = ds
	for _, m := range models {
		if ForWorker(m, 5) != m {
			t.Errorf("%T: ForWorker should return the instance itself", m)
		}
	}
	if ForWorker(q, 5) == Model(q) {
		t.Error("ForWorker on a WorkerCloner should clone")
	}
}
