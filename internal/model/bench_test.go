package model

import (
	"testing"

	"repro/internal/data"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// benchBatch is the mini-batch size the gradient benchmarks use; it matches
// the per-worker batch size of the experiment suite.
const benchBatch = 64

func benchGradient(b *testing.B, m Model, batch []int) {
	b.Helper()
	src := rng.New(99)
	params := tensor.New(m.Dim())
	m.Init(src, params)
	grad := tensor.New(m.Dim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Gradient(params, grad, batch); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDataset(b *testing.B, classes, features, perClass int) *data.Dataset {
	b.Helper()
	ds, err := data.Blobs(rng.New(7), classes, features, perClass, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func BenchmarkModelGradientLogistic(b *testing.B) {
	ds := benchDataset(b, 10, 32, 100)
	m, err := NewLogistic(ds)
	if err != nil {
		b.Fatal(err)
	}
	benchGradient(b, m, ds.Batch(rng.New(3), benchBatch))
}

func BenchmarkModelGradientMLP(b *testing.B) {
	ds := benchDataset(b, 10, 32, 100)
	m, err := NewMLP(ds, 64)
	if err != nil {
		b.Fatal(err)
	}
	benchGradient(b, m, ds.Batch(rng.New(3), benchBatch))
}

func BenchmarkModelGradientLinReg(b *testing.B) {
	ds, _, err := data.LinearData(rng.New(7), 64, 512, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewLinearRegression(ds)
	if err != nil {
		b.Fatal(err)
	}
	benchGradient(b, m, ds.Batch(rng.New(3), benchBatch))
}

func BenchmarkModelLossMLP(b *testing.B) {
	ds := benchDataset(b, 10, 32, 100)
	m, err := NewMLP(ds, 64)
	if err != nil {
		b.Fatal(err)
	}
	batch := ds.Batch(rng.New(3), benchBatch)
	src := rng.New(99)
	params := tensor.New(m.Dim())
	m.Init(src, params)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Loss(params, batch); err != nil {
			b.Fatal(err)
		}
	}
}
