// Package data generates the synthetic datasets that stand in for the
// paper's ImageNet/CIFAR-10/UCF101/WMT17 workloads. Statistical-efficiency
// effects (staleness, partial participation, parameter divergence) only
// need a real optimization problem with held-out evaluation — these
// generators provide classification and regression problems with known
// structure, deterministic given a seed.
package data

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Example is one labeled observation: features X and an integer label (or,
// for regression, a real target in Target).
type Example struct {
	X      tensor.Vector
	Label  int
	Target float64
}

// Dataset is an in-memory set of examples.
type Dataset struct {
	Examples []Example
	// Features is the dimensionality of X.
	Features int
	// Classes is the number of labels (0 for regression data).
	Classes int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Examples) }

// Batch draws `size` example indices uniformly with replacement — the
// i.i.d. mini-batch sampling of SGD.
func (d *Dataset) Batch(src *rng.Source, size int) []int {
	out := make([]int, size)
	for i := range out {
		out[i] = src.Intn(len(d.Examples))
	}
	return out
}

// Split partitions the dataset into train and validation subsets with the
// given validation fraction, shuffled by src. The split copies example
// headers but shares feature vectors.
func (d *Dataset) Split(src *rng.Source, valFrac float64) (train, val *Dataset, err error) {
	if valFrac < 0 || valFrac >= 1 {
		return nil, nil, fmt.Errorf("data: validation fraction %v", valFrac)
	}
	perm := src.Perm(len(d.Examples))
	nVal := int(float64(len(d.Examples)) * valFrac)
	val = &Dataset{Features: d.Features, Classes: d.Classes,
		Examples: make([]Example, 0, nVal)}
	train = &Dataset{Features: d.Features, Classes: d.Classes,
		Examples: make([]Example, 0, len(d.Examples)-nVal)}
	for i, idx := range perm {
		if i < nVal {
			val.Examples = append(val.Examples, d.Examples[idx])
		} else {
			train.Examples = append(train.Examples, d.Examples[idx])
		}
	}
	return train, val, nil
}

// Blobs generates a Gaussian-blob classification problem: `classes` cluster
// centers drawn uniformly in [-1,1]^features, each with perClass examples
// at the given spread. It is the stand-in for image classification: harder
// with more classes and larger spread.
func Blobs(src *rng.Source, classes, features, perClass int, spread float64) (*Dataset, error) {
	if classes < 2 || features < 1 || perClass < 1 {
		return nil, fmt.Errorf("data: blobs(%d classes, %d features, %d per class)",
			classes, features, perClass)
	}
	centers := make([]tensor.Vector, classes)
	for c := range centers {
		centers[c] = tensor.New(features)
		for j := range centers[c] {
			centers[c][j] = src.Uniform(-1, 1)
		}
	}
	d := &Dataset{Features: features, Classes: classes,
		Examples: make([]Example, 0, classes*perClass)}
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			x := centers[c].Clone()
			for j := range x {
				x[j] += src.Normal(0, spread)
			}
			d.Examples = append(d.Examples, Example{X: x, Label: c})
		}
	}
	// Shuffle so sequential slicing is class-balanced.
	perm := src.Perm(len(d.Examples))
	shuffled := make([]Example, len(d.Examples))
	for i, p := range perm {
		shuffled[i] = d.Examples[p]
	}
	d.Examples = shuffled
	return d, nil
}

// LinearData generates y = w*·x + b* + noise regression data with a random
// ground-truth (w*, b*) of unit-scale coefficients.
func LinearData(src *rng.Source, features, n int, noise float64) (*Dataset, tensor.Vector, error) {
	if features < 1 || n < 1 {
		return nil, nil, fmt.Errorf("data: linear(%d features, %d examples)", features, n)
	}
	truth := tensor.New(features + 1) // weights then bias
	for j := range truth {
		truth[j] = src.Normal(0, 1)
	}
	d := &Dataset{Features: features, Examples: make([]Example, n)}
	for i := 0; i < n; i++ {
		x := tensor.New(features)
		for j := range x {
			x[j] = src.Normal(0, 1)
		}
		y := truth[features] // bias
		for j := range x {
			y += truth[j] * x[j]
		}
		y += src.Normal(0, noise)
		d.Examples[i] = Example{X: x, Target: y}
	}
	return d, truth, nil
}
