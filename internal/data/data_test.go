package data

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestBlobs(t *testing.T) {
	src := rng.New(1)
	ds, err := Blobs(src, 5, 8, 20, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 100 {
		t.Errorf("Len = %d, want 100", ds.Len())
	}
	if ds.Classes != 5 || ds.Features != 8 {
		t.Errorf("classes/features = %d/%d", ds.Classes, ds.Features)
	}
	counts := make([]int, 5)
	for _, ex := range ds.Examples {
		if ex.Label < 0 || ex.Label >= 5 {
			t.Fatalf("label %d out of range", ex.Label)
		}
		if len(ex.X) != 8 {
			t.Fatalf("feature dim %d", len(ex.X))
		}
		counts[ex.Label]++
	}
	for c, n := range counts {
		if n != 20 {
			t.Errorf("class %d has %d examples, want 20", c, n)
		}
	}
}

func TestBlobsShuffled(t *testing.T) {
	src := rng.New(2)
	ds, err := Blobs(src, 4, 2, 25, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// The first 25 examples should not all be one class.
	first := ds.Examples[0].Label
	allSame := true
	for _, ex := range ds.Examples[:25] {
		if ex.Label != first {
			allSame = false
			break
		}
	}
	if allSame {
		t.Error("examples do not appear shuffled")
	}
}

func TestBlobsInvalid(t *testing.T) {
	src := rng.New(1)
	if _, err := Blobs(src, 1, 4, 10, 0.1); err == nil {
		t.Error("1 class should error")
	}
	if _, err := Blobs(src, 3, 0, 10, 0.1); err == nil {
		t.Error("0 features should error")
	}
	if _, err := Blobs(src, 3, 4, 0, 0.1); err == nil {
		t.Error("0 per class should error")
	}
}

func TestBlobsDeterministic(t *testing.T) {
	a, err := Blobs(rng.New(9), 3, 4, 5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Blobs(rng.New(9), 3, 4, 5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Examples {
		if a.Examples[i].Label != b.Examples[i].Label {
			t.Fatal("labels differ between same-seed generations")
		}
		if !a.Examples[i].X.Equal(b.Examples[i].X, 0) {
			t.Fatal("features differ between same-seed generations")
		}
	}
}

func TestLinearData(t *testing.T) {
	src := rng.New(3)
	ds, truth, err := LinearData(src, 6, 200, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 200 || ds.Features != 6 {
		t.Errorf("shape = (%d,%d)", ds.Len(), ds.Features)
	}
	if len(truth) != 7 {
		t.Fatalf("truth dim = %d, want 7", len(truth))
	}
	// Residuals of the true model should be ~noise-sized.
	var maxResid float64
	for _, ex := range ds.Examples {
		y := truth[6]
		for j, xj := range ex.X {
			y += truth[j] * xj
		}
		if r := math.Abs(y - ex.Target); r > maxResid {
			maxResid = r
		}
	}
	if maxResid > 0.1 {
		t.Errorf("max residual of ground truth = %v, want noise-sized", maxResid)
	}
}

func TestLinearDataInvalid(t *testing.T) {
	src := rng.New(1)
	if _, _, err := LinearData(src, 0, 10, 0.1); err == nil {
		t.Error("0 features should error")
	}
	if _, _, err := LinearData(src, 3, 0, 0.1); err == nil {
		t.Error("0 examples should error")
	}
}

func TestBatchWithinRange(t *testing.T) {
	src := rng.New(4)
	ds, err := Blobs(src, 2, 2, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b := ds.Batch(src, 64)
	if len(b) != 64 {
		t.Fatalf("batch size = %d", len(b))
	}
	for _, idx := range b {
		if idx < 0 || idx >= ds.Len() {
			t.Fatalf("index %d out of range", idx)
		}
	}
}

func TestSplit(t *testing.T) {
	src := rng.New(5)
	ds, err := Blobs(src, 3, 2, 50, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	train, val, err := ds.Split(src, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if val.Len() != 30 || train.Len() != 120 {
		t.Errorf("split = (%d train, %d val), want (120, 30)", train.Len(), val.Len())
	}
	if train.Classes != 3 || val.Classes != 3 {
		t.Error("split lost class metadata")
	}
}

func TestSplitInvalid(t *testing.T) {
	src := rng.New(5)
	ds, err := Blobs(src, 2, 2, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ds.Split(src, -0.1); err == nil {
		t.Error("negative fraction should error")
	}
	if _, _, err := ds.Split(src, 1.0); err == nil {
		t.Error("fraction 1.0 should error")
	}
}
