package transport

import (
	"bufio"
	"bytes"
	"strconv"
	"testing"
)

// BenchmarkCodecSteadyState measures one encode+decode cycle of a v1 frame
// through the production zero-copy paths (Encode → bufio → ReadMessage with
// pooled payload recycling). The framing gate pins this at 0 allocs/op for
// every payload size — including tiny payloads, which round up into the
// smallest pool class.
func BenchmarkCodecSteadyState(b *testing.B) {
	for _, elems := range []int{8, 64, 4096, 32768} {
		b.Run(strconv.Itoa(elems), func(b *testing.B) {
			msg := Message{Type: MsgChunk, Iter: 1, Payload: make([]float64, elems)}
			buf, err := Encode(nil, msg)
			if err != nil {
				b.Fatal(err)
			}
			rd := bytes.NewReader(buf)
			br := bufio.NewReaderSize(rd, 1<<16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, err = Encode(buf[:0], msg)
				if err != nil {
					b.Fatal(err)
				}
				rd.Reset(buf)
				br.Reset(rd)
				out, err := ReadMessage(br)
				if err != nil {
					b.Fatal(err)
				}
				PutPayload(out.Payload)
			}
		})
	}
}
