package transport

import (
	"fmt"
	"sync"
)

// Tag-stream demultiplexing.
//
// A Mesh delivers a single FIFO per peer: Recv(from) returns the next
// message that peer sent, whatever it belongs to. That is exactly right for
// one collective at a time and exactly wrong for concurrent collectives —
// two in-flight ring reductions on one mesh would steal each other's
// messages off the shared per-peer queue. The overlap reducer needs several
// bucket collectives in flight at once, so the transport provides tag
// streams: independent virtual FIFOs multiplexed over one mesh, identified
// by the Message.Stream field (a first-class header field of the v1 frame
// format — stream routing no longer borrows Iter's high bits, and the full
// int64 iteration space belongs to the collective).
//
// Transports that route streams natively implement StreamRouter: the TCP
// mesh demultiplexes on the frame header as frames leave the socket, with no
// wrapper layer at all. For meshes without native routing (the in-memory
// mesh), StreamDemux supplies the same semantics cooperatively on top of
// plain Recv. Streams(m) picks whichever the mesh supports.
//
// The demux's routing is pull-driven and cooperative: whichever stream needs
// a message drains the parent queue under a per-peer election, delivering
// strays to their owning stream's queue, so no pump goroutine exists and an
// idle demux costs nothing.
//
// The election must be selectable, not a mutex: the elected puller may block
// in parent.Recv indefinitely (its own message simply hasn't been sent yet)
// AFTER having routed another stream's message. A waiter committed to a
// mutex acquire could never observe that routed delivery, and if the
// puller's missing message transitively depends on the waiter's progress on
// another rank, the job deadlocks. Waiters therefore select on their own
// queue's wake channel against the pull semaphore, so a routed delivery
// always unblocks its owner even while the puller stays parked.

// StreamRouter is an optional Mesh capability: StreamView returns a Mesh
// view whose traffic travels on logical stream id (id ≥ 0), fully isolated
// from other streams' traffic on the same mesh. Stream 0 is the view plain
// Send/Recv already speak.
type StreamRouter interface {
	StreamView(id int32) Mesh
}

// Streams returns a stream router for m: the mesh's own native router when
// it implements StreamRouter (TCPMesh routes on the frame header; SubMesh
// forwards to a native parent), and a cooperative StreamDemux otherwise.
// The mesh's receive side belongs to the router's views afterwards — raw
// m.Recv calls must not be mixed with stream Recvs on demux-backed meshes.
func Streams(m Mesh) StreamRouter {
	if sr, ok := m.(StreamRouter); ok {
		return sr
	}
	return NewStreamDemux(m)
}

// StreamDemux multiplexes independent tag streams over one parent Mesh.
// Each Stream(id) view behaves as a private mesh: concurrent collectives on
// distinct streams cannot observe each other's messages. One goroutine per
// (stream, peer) may Recv at a time — which the SPMD collectives satisfy by
// construction — while different streams may run fully concurrently.
//
// The demux owns the parent's receive side while any stream is active: raw
// parent.Recv calls must not be mixed with stream Recvs, or routing races
// on the shared queues.
type StreamDemux struct {
	parent Mesh

	// pull[j] is a binary semaphore electing the goroutine that drains the
	// parent's peer-j queue (send acquires, receive releases). A channel
	// rather than a mutex so waiters can select against their own queue.
	pull []chan struct{}

	mu     sync.Mutex
	queues map[uint64]*chanQueue // (stream, peer) -> routed messages
}

var _ StreamRouter = (*StreamDemux)(nil)

// NewStreamDemux wraps parent for tag-stream use. The parent must not be
// receiving elsewhere while streams are active. Prefer Streams(), which
// skips the wrapper entirely when the parent routes natively.
func NewStreamDemux(parent Mesh) *StreamDemux {
	d := &StreamDemux{
		parent: parent,
		pull:   make([]chan struct{}, parent.Size()),
		queues: make(map[uint64]*chanQueue),
	}
	for j := range d.pull {
		d.pull[j] = make(chan struct{}, 1)
	}
	return d
}

// Stream returns the mesh view for stream id (id ≥ 0). Views are cheap and
// stateless; the per-peer queues are created lazily on first routing. When
// the parent routes streams natively, its own view is returned — a demux
// layered over a native router would never see the frames it waits for (the
// parent files them under its own stream queues before the demux's
// parent.Recv could observe them).
func (d *StreamDemux) Stream(id int32) Mesh {
	if sr, ok := d.parent.(StreamRouter); ok {
		return sr.StreamView(id)
	}
	return &streamMesh{d: d, id: id}
}

// StreamView implements StreamRouter.
func (d *StreamDemux) StreamView(id int32) Mesh { return d.Stream(id) }

func streamKey(stream int32, peer int) uint64 {
	return uint64(uint32(stream))<<32 | uint64(uint32(peer))
}

// queue returns (creating if needed) the routed-message queue for
// (stream, peer).
func (d *StreamDemux) queue(stream int32, peer int) *chanQueue {
	key := streamKey(stream, peer)
	d.mu.Lock()
	q := d.queues[key]
	if q == nil {
		q = newChanQueue()
		d.queues[key] = q
	}
	d.mu.Unlock()
	return q
}

// streamMesh is one stream's view of the demux parent.
type streamMesh struct {
	d  *StreamDemux
	id int32
}

var (
	_ Mesh        = (*streamMesh)(nil)
	_ OwnedSender = (*streamMesh)(nil)
)

func (s *streamMesh) Rank() int { return s.d.parent.Rank() }
func (s *streamMesh) Size() int { return s.d.parent.Size() }

// Send stamps the stream id on the message and forwards to the parent.
func (s *streamMesh) Send(to int, msg Message) error {
	msg.Stream = s.id
	return s.d.parent.Send(to, msg)
}

// SendOwned implements OwnedSender.
func (s *streamMesh) SendOwned(to int, msg Message) error {
	msg.Stream = s.id
	return SendOwned(s.d.parent, to, msg)
}

// Recv returns the next message rank `from` sent on this stream. Messages
// for other streams encountered while draining the parent queue are routed
// to their owners.
func (s *streamMesh) Recv(from int) (Message, error) {
	if from < 0 || from >= s.d.parent.Size() {
		return Message{}, fmt.Errorf("transport: recv from rank %d of %d", from, s.d.parent.Size())
	}
	own := s.d.queue(s.id, from)
	pull := s.d.pull[from]
	for {
		if msg, ok := own.tryPop(); ok {
			return msg, nil
		}
		select {
		case <-own.ready():
			// The elected puller routed a message to us (or left a stale
			// token); loop around and try the pop.
		case pull <- struct{}{}:
			// We are the puller: drain one message from the parent, then
			// stand down so a waiter with a routed message can proceed and
			// the election stays fair.
			msg, ok, err := s.drainOne(own, from)
			<-pull
			if err != nil {
				return Message{}, err
			}
			if ok {
				return msg, nil
			}
		}
	}
}

// drainOne, running as the elected puller for peer `from`, returns this
// stream's next message when one is available (already routed, or next off
// the parent). A stray for another stream is routed to its owner's queue —
// whose wake channel unblocks that owner even if it is mid-select — and
// ok=false tells the caller to re-enter the election.
func (s *streamMesh) drainOne(own *chanQueue, from int) (Message, bool, error) {
	// Another stream may have routed our message while we waited for the
	// election; prefer it over draining further.
	if msg, ok := own.tryPop(); ok {
		return msg, true, nil
	}
	msg, err := s.d.parent.Recv(from)
	if err != nil {
		return Message{}, false, err
	}
	if msg.Stream == s.id {
		return msg, true, nil
	}
	// The push cannot fail — demux queues never close.
	_ = s.d.queue(msg.Stream, from).push(msg)
	return Message{}, false, nil
}

// Close closes the underlying mesh (all streams share its lifecycle).
func (s *streamMesh) Close() error { return s.d.parent.Close() }
