package transport

import (
	"errors"
	"fmt"
	"sync"
)

// Tag-stream demultiplexing.
//
// A Mesh delivers a single FIFO per peer: Recv(from) returns the next
// message that peer sent, whatever it belongs to. That is exactly right for
// one collective at a time and exactly wrong for concurrent collectives —
// two in-flight ring reductions on one mesh would steal each other's
// messages off the shared per-peer queue. The overlap reducer needs several
// bucket collectives in flight at once, so the transport grows tag streams:
// independent virtual FIFOs multiplexed over one mesh.
//
// A stream id rides in the high bits of the Message.Iter field — the wire
// format is unchanged, and collectives keep their full (Iter, Chunk) tag
// arithmetic inside a stream. StreamDemux wraps a parent mesh; Stream(id)
// returns a Mesh view that stamps the id on sends and, on receive, pops
// only messages carrying its id. Routing is pull-driven and cooperative:
// whichever stream needs a message drains the parent queue under a per-peer
// election, delivering strays to their owning stream's queue, so no pump
// goroutine exists and an idle demux costs nothing.
//
// The election must be selectable, not a mutex: the elected puller may block
// in parent.Recv indefinitely (its own message simply hasn't been sent yet)
// AFTER having routed another stream's message. A waiter committed to a
// mutex acquire could never observe that routed delivery, and if the
// puller's missing message transitively depends on the waiter's progress on
// another rank, the job deadlocks. Waiters therefore select on their own
// queue's wake channel against the pull semaphore, so a routed delivery
// always unblocks its owner even while the puller stays parked.

// streamIterBits is how many low bits of Iter remain for the collective's
// own iteration tag; the high bits carry the stream id.
const streamIterBits = 48

// MaxStreamIter is the exclusive upper bound on iteration tags usable
// within a stream.
const MaxStreamIter = int64(1) << streamIterBits

// ErrIterOverflow is returned when an iteration tag does not fit the
// stream-multiplexed Iter space (negative or ≥ MaxStreamIter): packing it
// would alias another stream's messages onto this one.
var ErrIterOverflow = errors.New("transport: iter outside stream tag space")

// packStreamIter folds a stream id into the high bits of an iteration tag.
func packStreamIter(stream int32, iter int64) (int64, error) {
	if iter < 0 || iter >= MaxStreamIter {
		return 0, fmt.Errorf("%w: iter %d", ErrIterOverflow, iter)
	}
	return int64(stream)<<streamIterBits | iter, nil
}

// unpackStreamIter splits a packed Iter into (stream, iter). Messages sent
// outside any stream (iter < MaxStreamIter) decode as stream 0, so legacy
// senders interoperate with a demux listening on Stream(0).
func unpackStreamIter(packed int64) (int32, int64) {
	return int32(packed >> streamIterBits), packed & (MaxStreamIter - 1)
}

// StreamDemux multiplexes independent tag streams over one parent Mesh.
// Each Stream(id) view behaves as a private mesh: concurrent collectives on
// distinct streams cannot observe each other's messages. One goroutine per
// (stream, peer) may Recv at a time — which the SPMD collectives satisfy by
// construction — while different streams may run fully concurrently.
//
// The demux owns the parent's receive side while any stream is active: raw
// parent.Recv calls must not be mixed with stream Recvs, or routing races
// on the shared queues.
type StreamDemux struct {
	parent Mesh

	// pull[j] is a binary semaphore electing the goroutine that drains the
	// parent's peer-j queue (send acquires, receive releases). A channel
	// rather than a mutex so waiters can select against their own queue.
	pull []chan struct{}

	mu     sync.Mutex
	queues map[uint64]*chanQueue // (stream, peer) -> routed messages
}

// NewStreamDemux wraps parent for tag-stream use. The parent must not be
// receiving elsewhere while streams are active.
func NewStreamDemux(parent Mesh) *StreamDemux {
	d := &StreamDemux{
		parent: parent,
		pull:   make([]chan struct{}, parent.Size()),
		queues: make(map[uint64]*chanQueue),
	}
	for j := range d.pull {
		d.pull[j] = make(chan struct{}, 1)
	}
	return d
}

// Stream returns the mesh view for stream id (id ≥ 0). Views are cheap and
// stateless; the per-peer queues are created lazily on first routing.
func (d *StreamDemux) Stream(id int32) Mesh {
	return &streamMesh{d: d, id: id}
}

func streamKey(stream int32, peer int) uint64 {
	return uint64(uint32(stream))<<32 | uint64(uint32(peer))
}

// queue returns (creating if needed) the routed-message queue for
// (stream, peer).
func (d *StreamDemux) queue(stream int32, peer int) *chanQueue {
	key := streamKey(stream, peer)
	d.mu.Lock()
	q := d.queues[key]
	if q == nil {
		q = newChanQueue()
		d.queues[key] = q
	}
	d.mu.Unlock()
	return q
}

// streamMesh is one stream's view of the demux parent.
type streamMesh struct {
	d  *StreamDemux
	id int32
}

var (
	_ Mesh        = (*streamMesh)(nil)
	_ OwnedSender = (*streamMesh)(nil)
)

func (s *streamMesh) Rank() int { return s.d.parent.Rank() }
func (s *streamMesh) Size() int { return s.d.parent.Size() }

// Send stamps the stream id into the message's Iter and forwards to the
// parent.
func (s *streamMesh) Send(to int, msg Message) error {
	packed, err := packStreamIter(s.id, msg.Iter)
	if err != nil {
		return err
	}
	msg.Iter = packed
	return s.d.parent.Send(to, msg)
}

// SendOwned implements OwnedSender; the payload is released even when the
// iter does not fit the stream tag space, honoring the ownership contract.
func (s *streamMesh) SendOwned(to int, msg Message) error {
	packed, err := packStreamIter(s.id, msg.Iter)
	if err != nil {
		PutPayload(msg.Payload)
		return err
	}
	msg.Iter = packed
	return SendOwned(s.d.parent, to, msg)
}

// Recv returns the next message rank `from` sent on this stream. Messages
// for other streams encountered while draining the parent queue are routed
// to their owners.
func (s *streamMesh) Recv(from int) (Message, error) {
	if from < 0 || from >= s.d.parent.Size() {
		return Message{}, fmt.Errorf("transport: recv from rank %d of %d", from, s.d.parent.Size())
	}
	own := s.d.queue(s.id, from)
	pull := s.d.pull[from]
	for {
		if msg, ok := own.tryPop(); ok {
			return msg, nil
		}
		select {
		case <-own.ready():
			// The elected puller routed a message to us (or left a stale
			// token); loop around and try the pop.
		case pull <- struct{}{}:
			// We are the puller: drain one message from the parent, then
			// stand down so a waiter with a routed message can proceed and
			// the election stays fair.
			msg, ok, err := s.drainOne(own, from)
			<-pull
			if err != nil {
				return Message{}, err
			}
			if ok {
				return msg, nil
			}
		}
	}
}

// drainOne, running as the elected puller for peer `from`, returns this
// stream's next message when one is available (already routed, or next off
// the parent). A stray for another stream is routed to its owner's queue —
// whose wake channel unblocks that owner even if it is mid-select — and
// ok=false tells the caller to re-enter the election.
func (s *streamMesh) drainOne(own *chanQueue, from int) (Message, bool, error) {
	// Another stream may have routed our message while we waited for the
	// election; prefer it over draining further.
	if msg, ok := own.tryPop(); ok {
		return msg, true, nil
	}
	msg, err := s.d.parent.Recv(from)
	if err != nil {
		return Message{}, false, err
	}
	stream, iter := unpackStreamIter(msg.Iter)
	msg.Iter = iter
	if stream == s.id {
		return msg, true, nil
	}
	// The push cannot fail — demux queues never close.
	_ = s.d.queue(stream, from).push(msg)
	return Message{}, false, nil
}

// Close closes the underlying mesh (all streams share its lifecycle).
func (s *streamMesh) Close() error { return s.d.parent.Close() }
