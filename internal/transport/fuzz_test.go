package transport

import (
	"bytes"
	"testing"
)

// FuzzReadMessage feeds arbitrary bytes to the wire decoder: it must never
// panic and never allocate unboundedly, only return messages or errors.
func FuzzReadMessage(f *testing.F) {
	// Seed with valid encodings and near-valid corruptions.
	for _, m := range []Message{
		{Type: MsgChunk, Iter: 1, Chunk: 2, Payload: []float64{1, 2, 3}},
		{Type: MsgBroadcast},
		{Type: MsgControl, Iter: -9, Payload: []float64{0.5}},
	} {
		buf, err := Encode(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		if len(buf) > 4 {
			f.Add(buf[:len(buf)-3])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must round-trip.
		out, err := Encode(nil, msg)
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		back, err := ReadMessage(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Type != msg.Type || back.Iter != msg.Iter || back.Chunk != msg.Chunk ||
			len(back.Payload) != len(msg.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", back, msg)
		}
	})
}
