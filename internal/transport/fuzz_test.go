package transport

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/tensor"
)

// FuzzReadMessage feeds arbitrary bytes to the wire decoder: it must never
// panic and never allocate unboundedly, only return messages or errors.
func FuzzReadMessage(f *testing.F) {
	// Seed with valid encodings across every dtype and near-valid
	// corruptions.
	seeds := []Message{
		{Type: MsgChunk, Iter: 1, Chunk: 2, Payload: []float64{1, 2, 3}},
		{Type: MsgBroadcast},
		{Type: MsgControl, Iter: -9, Payload: []float64{0.5}},
	}
	for _, d := range []tensor.Dtype{tensor.F32, tensor.F16, tensor.I8} {
		seeds = append(seeds, Message{
			Type: MsgChunk, Iter: 3, Chunk: 1, Dtype: d,
			Payload: []float64{-1.5, 0, 3.25e-3, 7e4, math.Pi},
		})
	}
	// Sparse (index+value) frames, dense-equal dtypes and lossy ones.
	seeds = append(seeds,
		Message{Type: MsgReduce, Iter: 4, Payload: []float64{1.25, -7, 0.5}, Indices: []int32{3, 17, 4096}},
		Message{Type: MsgReduce, Iter: 5, Dtype: tensor.F16, Payload: []float64{2, 3, 5}, Indices: []int32{0, 1, 2}},
	)
	// Parameter-server frame family: chunked push/pull/push-pull requests
	// (mode packed into the chunk tag's high bits, version horizon in Iter)
	// and acks (new version in Iter), dense and compressed.
	seeds = append(seeds,
		Message{Type: MsgPSPush, Stream: 1 << 16, Iter: 0, Chunk: 2<<24 | 3, Payload: []float64{0.5, -1}},
		Message{Type: MsgPSPull, Stream: 1 << 16, Chunk: 1},
		Message{Type: MsgPSPushPull, Stream: 1 << 16, Iter: 7, Chunk: 3<<24 | 0, Payload: []float64{1, 2, 3}},
		Message{Type: MsgPSPushPull, Stream: 1 << 16, Iter: 2, Chunk: 2<<24 | 5, Dtype: tensor.F16, Payload: []float64{-2.5, 8}},
		Message{Type: MsgPSAck, Stream: 1 << 16, Iter: 42, Chunk: 3<<24 | 0, Payload: []float64{4, 5, 6}},
		Message{Type: MsgPSAck, Stream: 1 << 16, Iter: 1, Chunk: 2<<24 | 3},
	)
	for _, m := range seeds {
		buf, err := Encode(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		if len(buf) > 4 {
			f.Add(buf[:len(buf)-3])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	// v1 adversarial corpus: truncation at every header byte boundary, plus
	// forged header fields (unknown version, unknown type, unknown flag bits,
	// flag/len contradictions, absurd element counts, inconsistent prefix).
	base, err := Encode(nil, Message{
		Type: MsgReduce, Stream: 3, Iter: 11, Chunk: 2,
		Payload: []float64{1, 2, 3, 4}, Indices: []int32{0, 5, 9, 12},
	})
	if err != nil {
		f.Fatal(err)
	}
	for cut := 0; cut <= frameHeaderBytes; cut++ {
		f.Add(base[:cut])
	}
	forge := func(off int, b byte) []byte {
		fr := append([]byte(nil), base...)
		fr[off] = b
		return fr
	}
	f.Add(forge(4, 0))     // version below v1
	f.Add(forge(4, 0x7F))  // version far future
	f.Add(forge(5, 0))     // type zero
	f.Add(forge(5, 0x99))  // type unknown
	f.Add(forge(6, 0xFF))  // unknown flag bits
	f.Add(forge(6, 0))     // sparse flag cleared, len still sparse
	f.Add(forge(0, 0x01))  // frameLen contradicts the header fields
	f.Add(forge(32, 0xFF)) // nelems inflated
	f.Add(forge(35, 0x7F)) // nelems beyond MaxPayloadElems

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must round-trip. For a lossy dtype the
		// fuzzer may have forged a scale our encoder would never emit, so
		// ONE re-encode may move the values — but the re-encoded message
		// decodes onto our own quantization grid, which must then be a
		// fixed point (idempotence).
		out, err := Encode(nil, msg)
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		back, err := ReadMessage(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Type != msg.Type || back.Iter != msg.Iter || back.Chunk != msg.Chunk ||
			back.Dtype != msg.Dtype || len(back.Payload) != len(msg.Payload) ||
			len(back.Indices) != len(msg.Indices) {
			t.Fatalf("round trip mismatch: %+v vs %+v", back, msg)
		}
		for i := range msg.Indices {
			if back.Indices[i] != msg.Indices[i] {
				t.Fatalf("index %d: round trip %d vs %d", i, back.Indices[i], msg.Indices[i])
			}
		}
		out2, err := Encode(nil, back)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("dtype %v encoding not idempotent", msg.Dtype)
		}
	})
}

// FuzzReadHello feeds arbitrary bytes to the hello parser and, end to end,
// to the negotiating side of a live connection: no input may panic the
// parser, and anything that is not a valid current-version hello must reject
// the connection with ErrVersionMismatch.
func FuzzReadHello(f *testing.F) {
	var good [helloBytes]byte
	putHello(good[:], ProtocolV1, CapsAll, 3)
	f.Add(good[:])
	future := good
	future[4] = ProtocolV1 + 9
	f.Add(future[:])
	old := good
	old[4] = 0
	f.Add(old[:])
	bad := good
	bad[0] = 'X'
	f.Add(bad[:])
	f.Add([]byte{})
	f.Add(good[:helloBytes-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < helloBytes {
			return
		}
		version, caps, rank, err := parseHello(data[:helloBytes])
		if err != nil {
			if !errors.Is(err, ErrVersionMismatch) {
				t.Fatalf("parse error not typed: %v", err)
			}
			return
		}
		// A parsed hello must re-encode to the same negotiation inputs.
		var out [helloBytes]byte
		putHello(out[:], version, caps, int(rank))
		v2, c2, r2, err := parseHello(out[:])
		if err != nil || v2 != version || c2 != caps || r2 != rank {
			t.Fatalf("hello round trip: (%d,%v,%d,%v) vs (%d,%v,%d)", v2, c2, r2, err, version, caps, rank)
		}
	})
}

// TestReadMessageUnknownDtype: a frame advertising a dtype the decoder does
// not know must fail with ErrUnknownDtype before any payload read, and the
// encoder must refuse to produce such a frame in the first place.
func TestReadMessageUnknownDtype(t *testing.T) {
	buf, err := Encode(nil, Message{Type: MsgChunk, Payload: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	buf[7] = 0x7E // dtype byte (v1 offset 7)
	if _, err := ReadMessage(bytes.NewReader(buf)); !errors.Is(err, ErrUnknownDtype) {
		t.Errorf("forged dtype error = %v, want ErrUnknownDtype", err)
	}
	if _, err := Encode(nil, Message{Type: MsgChunk, Dtype: tensor.Dtype(9)}); !errors.Is(err, ErrUnknownDtype) {
		t.Errorf("encode with bad dtype error = %v, want ErrUnknownDtype", err)
	}
}

// TestReadMessageTruncatedQuantized: quantized frames cut anywhere in the
// payload (including mid-scale for I8) must error, not hang or panic; the
// intact frame must decode to exactly the values the sender-side RoundTrip
// predicts.
func TestReadMessageTruncatedQuantized(t *testing.T) {
	payload := make([]float64, tensor.I8BlockElems+37)
	for i := range payload {
		payload[i] = (float64(i%255) - 127) * 1.7e-3
	}
	for _, d := range []tensor.Dtype{tensor.F32, tensor.F16, tensor.I8} {
		buf, err := Encode(nil, Message{Type: MsgChunk, Dtype: d, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		if want := frameHeaderBytes + d.WireBytes(len(payload)); len(buf) != want {
			t.Fatalf("dtype %v frame is %d bytes, want %d", d, len(buf), want)
		}
		for _, cut := range []int{frameHeaderBytes, frameHeaderBytes + 1, frameHeaderBytes + 9, len(buf) - 1} {
			if _, err := ReadMessage(bytes.NewReader(buf[:cut])); err == nil {
				t.Errorf("dtype %v truncated at %d decoded without error", d, cut)
			}
		}
		msg, err := ReadMessage(bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		want := append([]float64(nil), payload...)
		tensor.RoundTrip(d, want)
		for i := range want {
			if math.Float64bits(msg.Payload[i]) != math.Float64bits(want[i]) {
				t.Fatalf("dtype %v elem %d: wire %v, RoundTrip %v", d, i, msg.Payload[i], want[i])
			}
		}
	}
}
