package transport

import (
	"math/bits"
	"sync"
)

// Payload buffer pooling.
//
// Every message delivered through a Mesh carries a payload the receiver
// owns: the in-memory mesh copies the sender's slice on Send (so the sender
// may keep mutating its buffers) and the TCP mesh materializes one slice per
// message read off the wire. Before this pool, both paths allocated a fresh
// slice per message — on the ring AllReduce hot path that is 2(N−1)
// large allocations per rank per iteration.
//
// Ownership contract:
//
//   - Send never takes ownership of m.Payload; the caller may reuse its
//     buffer immediately after Send returns.
//   - The payload in a message returned by Recv is owned by the receiver.
//     When the receiver is done with it, it MAY hand it back with
//     PutPayload; holding it forever is also fine (the pool just misses).
//     After PutPayload the slice must not be touched — it will be handed to
//     a future GetPayload caller.
//   - Buffers returned by GetPayload hold arbitrary stale data; callers
//     must overwrite (or zero) every element they read.
//
// The pool is bucketed by power-of-two capacity so mixed message sizes
// (full gradients, ring chunks, pipeline segments) do not poison each
// other: class c holds slices with cap ≥ 1<<c, Get rounds the request up,
// Put files a slice under the largest class its capacity covers.

// minPooledElems is the smallest buffer the pools hold. Requests below it
// are rounded UP to this capacity and served from the smallest class: tiny
// payloads (ring chunks of a few elements, control-sized frames) are the
// per-message steady state of small-tensor collectives, and handing them a
// pooled 64-element buffer keeps the receive path at zero allocations where
// an exact-size make would allocate per message.
const minPooledElems = 64

// minPoolClass is the class that holds minPooledElems-capacity buffers.
const minPoolClass = 6

// maxPoolClass covers MaxPayloadElems (16M elems = 1<<24).
const maxPoolClass = 24

var payloadPools [maxPoolClass + 1]sync.Pool

// headerPool recycles the *[]float64 boxes the payload pools store, so a
// PutPayload does not allocate a fresh 24-byte slice header on every
// release (the classic sync.Pool interface-boxing trap).
var headerPool sync.Pool

// poolClass returns the smallest class whose buffers hold n elements.
func poolClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GetPayload returns a float64 slice of length n, recycled when possible.
// Contents are NOT zeroed.
func GetPayload(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := poolClass(n)
	if c > maxPoolClass {
		return make([]float64, n)
	}
	if c < minPoolClass {
		c = minPoolClass // round tiny requests up to the smallest class
	}
	if hp, ok := payloadPools[c].Get().(*[]float64); ok {
		p := *hp
		*hp = nil
		headerPool.Put(hp)
		return p[:n]
	}
	return make([]float64, n, 1<<c)
}

// PutPayload recycles p for a future GetPayload. Small, nil, or oversized
// slices are dropped silently, so it is always safe to call on a payload of
// unknown provenance — but never on one that is still referenced elsewhere.
func PutPayload(p []float64) {
	c := capClass(cap(p))
	if c < 0 {
		return
	}
	hp, _ := headerPool.Get().(*[]float64)
	if hp == nil {
		hp = new([]float64)
	}
	*hp = p[:cap(p)]
	payloadPools[c].Put(hp)
}

// capClass returns the pool class a slice of capacity c can serve, or -1 if
// it is not poolable. A buffer of capacity c serves any request n ≤ c, so it
// files under floor(log2(c)): every Get from that class needs ≤ 1<<class
// elements.
func capClass(c int) int {
	if c < minPooledElems {
		return -1
	}
	class := bits.Len(uint(c)) - 1
	if class > maxPoolClass {
		return -1
	}
	return class
}

// Index-list pooling: the int32 analogue of the payload pools, recycling the
// index halves of sparse (top-k) messages. Same bucketing, same ownership
// contract — the receiver of a sparse message owns msg.Indices and MAY hand
// it back with PutIndices; the loopback send path and the wire decoder draw
// from here so steady-state sparse traffic allocates nothing.

var indexPools [maxPoolClass + 1]sync.Pool

// indexHeaderPool recycles the *[]int32 boxes the index pools store (see
// headerPool).
var indexHeaderPool sync.Pool

// GetIndices returns an int32 slice of length n, recycled when possible.
// Contents are NOT zeroed.
func GetIndices(n int) []int32 {
	if n == 0 {
		return nil
	}
	c := poolClass(n)
	if c > maxPoolClass {
		return make([]int32, n)
	}
	if c < minPoolClass {
		c = minPoolClass // round tiny requests up to the smallest class
	}
	if hp, ok := indexPools[c].Get().(*[]int32); ok {
		p := *hp
		*hp = nil
		indexHeaderPool.Put(hp)
		return p[:n]
	}
	return make([]int32, n, 1<<c)
}

// PutIndices recycles p for a future GetIndices. Small, nil, or oversized
// slices are dropped silently; never call it on a slice still referenced
// elsewhere.
func PutIndices(p []int32) {
	c := capClass(cap(p))
	if c < 0 {
		return
	}
	hp, _ := indexHeaderPool.Get().(*[]int32)
	if hp == nil {
		hp = new([]int32)
	}
	*hp = p[:cap(p)]
	indexPools[c].Put(hp)
}
