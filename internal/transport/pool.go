package transport

import (
	"math/bits"
	"sync"
)

// Payload buffer pooling.
//
// Every message delivered through a Mesh carries a payload the receiver
// owns: the in-memory mesh copies the sender's slice on Send (so the sender
// may keep mutating its buffers) and the TCP mesh materializes one slice per
// message read off the wire. Before this pool, both paths allocated a fresh
// slice per message — on the ring AllReduce hot path that is 2(N−1)
// large allocations per rank per iteration.
//
// Ownership contract:
//
//   - Send never takes ownership of m.Payload; the caller may reuse its
//     buffer immediately after Send returns.
//   - The payload in a message returned by Recv is owned by the receiver.
//     When the receiver is done with it, it MAY hand it back with
//     PutPayload; holding it forever is also fine (the pool just misses).
//     After PutPayload the slice must not be touched — it will be handed to
//     a future GetPayload caller.
//   - Buffers returned by GetPayload hold arbitrary stale data; callers
//     must overwrite (or zero) every element they read.
//
// The pool is bucketed by power-of-two capacity so mixed message sizes
// (full gradients, ring chunks, pipeline segments) do not poison each
// other: class c holds slices with cap ≥ 1<<c, Get rounds the request up,
// Put files a slice under the largest class its capacity covers.

// minPooledElems is the smallest payload worth pooling; below this the
// allocator is effectively free and pool bookkeeping would dominate.
const minPooledElems = 64

// maxPoolClass covers MaxPayloadElems (16M elems = 1<<24).
const maxPoolClass = 24

var payloadPools [maxPoolClass + 1]sync.Pool

// headerPool recycles the *[]float64 boxes the payload pools store, so a
// PutPayload does not allocate a fresh 24-byte slice header on every
// release (the classic sync.Pool interface-boxing trap).
var headerPool sync.Pool

// poolClass returns the smallest class whose buffers hold n elements.
func poolClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GetPayload returns a float64 slice of length n, recycled when possible.
// Contents are NOT zeroed.
func GetPayload(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := poolClass(n)
	if n < minPooledElems || c > maxPoolClass {
		return make([]float64, n)
	}
	if hp, ok := payloadPools[c].Get().(*[]float64); ok {
		p := *hp
		*hp = nil
		headerPool.Put(hp)
		return p[:n]
	}
	return make([]float64, n, 1<<c)
}

// PutPayload recycles p for a future GetPayload. Small, nil, or oversized
// slices are dropped silently, so it is always safe to call on a payload of
// unknown provenance — but never on one that is still referenced elsewhere.
func PutPayload(p []float64) {
	c := capClass(cap(p))
	if c < 0 {
		return
	}
	hp, _ := headerPool.Get().(*[]float64)
	if hp == nil {
		hp = new([]float64)
	}
	*hp = p[:cap(p)]
	payloadPools[c].Put(hp)
}

// capClass returns the pool class a slice of capacity c can serve, or -1 if
// it is not poolable. A buffer of capacity c serves any request n ≤ c, so it
// files under floor(log2(c)): every Get from that class needs ≤ 1<<class
// elements.
func capClass(c int) int {
	if c < minPooledElems {
		return -1
	}
	class := bits.Len(uint(c)) - 1
	if class > maxPoolClass {
		return -1
	}
	return class
}
