package transport

import (
	"errors"
	"io"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// Tests for the v1 connect hello: version negotiation, capability
// intersection, and typed rejection of peers that do not speak the protocol.

func TestHelloRoundTrip(t *testing.T) {
	var b [helloBytes]byte
	putHello(b[:], ProtocolV1, CapF32|CapSparse, 7)
	version, caps, rank, err := parseHello(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if version != ProtocolV1 || caps != CapF32|CapSparse || rank != 7 {
		t.Errorf("round trip = (v%d, %v, rank %d)", version, caps, rank)
	}
}

// tcpPair returns the two ends of a fresh localhost TCP connection. (A
// net.Pipe would deadlock the symmetric hello: it is unbuffered, and both
// ends write before reading — real sockets buffer a hello easily.)
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	type res struct {
		conn net.Conn
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		conn, err := ln.Accept()
		ch <- res{conn, err}
	}()
	a, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		_ = a.Close()
		t.Fatal(r.err)
	}
	return a, r.conn
}

// exchangePipe runs exchangeHello on both ends of a fresh connection.
func exchangePipe(t *testing.T, va uint8, ca Caps, ra int, vb uint8, cb Caps, rb int) (
	peerA, peerB int32, verA, verB uint8, capsA, capsB Caps, errA, errB error) {
	t.Helper()
	a, b := tcpPair(t)
	defer func() { _ = a.Close(); _ = b.Close() }()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); peerA, verA, capsA, errA = exchangeHello(a, va, ca, ra) }()
	go func() { defer wg.Done(); peerB, verB, capsB, errB = exchangeHello(b, vb, cb, rb) }()
	wg.Wait()
	return
}

// TestExchangeHelloNegotiation: both ends independently land on the min
// version and the AND of the capability masks, and see each other's rank.
func TestExchangeHelloNegotiation(t *testing.T) {
	peerA, peerB, verA, verB, capsA, capsB, errA, errB := exchangePipe(t,
		ProtocolV1, CapsAll, 0,
		ProtocolV1+2, CapF32|CapSparse|CapStreams, 1)
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v / %v", errA, errB)
	}
	if peerA != 1 || peerB != 0 {
		t.Errorf("peer ranks %d / %d", peerA, peerB)
	}
	if verA != ProtocolV1 || verB != ProtocolV1 {
		t.Errorf("negotiated versions %d / %d, want %d", verA, verB, ProtocolV1)
	}
	want := CapF32 | CapSparse | CapStreams
	if capsA != want || capsB != want {
		t.Errorf("negotiated caps %v / %v, want %v", capsA, capsB, want)
	}
}

// TestExchangeHelloRejectsOldVersion: a peer below the oldest version this
// build serves fails typed on the side that can tell.
func TestExchangeHelloRejectsOldVersion(t *testing.T) {
	_, _, _, _, _, _, errA, _ := exchangePipe(t,
		ProtocolV1, CapsAll, 0,
		0, CapsAll, 1)
	if !errors.Is(errA, ErrVersionMismatch) {
		t.Errorf("err = %v, want ErrVersionMismatch", errA)
	}
}

// TestExchangeHelloBadMagic: a peer that is not a mesh endpoint at all (its
// first bytes are not the magic) is rejected typed, not decoded as garbage.
func TestExchangeHelloBadMagic(t *testing.T) {
	a, b := tcpPair(t)
	defer func() { _ = a.Close(); _ = b.Close() }()
	go func() {
		var junk [helloBytes]byte
		for i := range junk {
			junk[i] = 0xEE
		}
		_, _ = b.Write(junk[:])
	}()
	_, _, _, err := exchangeHello(a, ProtocolV1, CapsAll, 0)
	if !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("err = %v, want ErrVersionMismatch", err)
	}
}

// TestExchangeHelloShort: a peer that hangs up mid-hello is a protocol
// mismatch, not a retryable I/O error.
func TestExchangeHelloShort(t *testing.T) {
	a, b := tcpPair(t)
	defer func() { _ = a.Close() }()
	go func() {
		_, _ = b.Write([]byte{'R', 'N', 'A'})
		// Drain the peer's hello before closing so the close arrives as a
		// graceful FIN (EOF), not a reset of unread data.
		var sink [helloBytes]byte
		_, _ = io.ReadFull(b, sink[:])
		_ = b.Close()
	}()
	_, _, _, err := exchangeHello(a, ProtocolV1, CapsAll, 0)
	if !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("err = %v, want ErrVersionMismatch", err)
	}
}

// TestDialMeshRejectsNonProtocolPeer: end to end, a raw TCP client that
// connects to a mesh listener and talks anything but the protocol fails mesh
// construction with ErrVersionMismatch.
func TestDialMeshRejectsNonProtocolPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		junk := make([]byte, helloBytes)
		for i := range junk {
			junk[i] = 0x55
		}
		_, _ = conn.Write(junk)
		// Keep the socket open so the failure is the magic check, not EOF.
		time.Sleep(2 * time.Second)
		_ = conn.Close()
	}()
	// Rank 1 of 2 accepts exactly one connection (from "rank 0").
	_, err = DialMesh(1, []string{"unused", ln.Addr().String()}, ln)
	if !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("DialMesh err = %v, want ErrVersionMismatch", err)
	}
}

// TestDialMeshRejectsOldPeer: a conforming hello advertising a pre-v1
// version is rejected the same way — elastic clusters with a stale binary
// fail fast at connect, not mid-collective.
func TestDialMeshRejectsOldPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		var hello [helloBytes]byte
		putHello(hello[:], 0, CapsAll, 0) // version 0: before v1 existed
		_, _ = conn.Write(hello[:])
		time.Sleep(2 * time.Second)
		_ = conn.Close()
	}()
	_, err = DialMesh(1, []string{"unused", ln.Addr().String()}, ln)
	if !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("DialMesh err = %v, want ErrVersionMismatch", err)
	}
}

// TestMixedVersionClusterDowngrades: a rank advertising a FUTURE version
// negotiates down to v1 with its v1 peers and the mesh still moves traffic.
func TestMixedVersionClusterDowngrades(t *testing.T) {
	meshes, err := NewTCPClusterOpts(3, func(rank int) MeshOptions {
		if rank == 0 {
			return MeshOptions{Version: ProtocolV1 + 6}
		}
		return MeshOptions{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	for r, m := range meshes {
		if m.Version() != ProtocolV1 {
			t.Errorf("rank %d negotiated v%d, want v%d", r, m.Version(), ProtocolV1)
		}
		if m.Caps() != CapsAll {
			t.Errorf("rank %d caps %v, want all", r, m.Caps())
		}
	}
	done := make(chan error, 1)
	go func() { done <- meshes[0].Send(1, Message{Type: MsgChunk, Iter: 3, Payload: []float64{1, 2}}) }()
	msg, err := meshes[1].Recv(0)
	if err != nil || <-done != nil {
		t.Fatalf("traffic on downgraded mesh failed: %v", err)
	}
	if msg.Iter != 3 || len(msg.Payload) != 2 {
		t.Errorf("got %+v", msg)
	}
}

// TestCapabilityDowngradeCompressed: toward a peer that cannot decode a
// compressed dtype, the sender quantizes locally and ships f64 — the receiver
// observes values bit-identical to a full-capability wire.
func TestCapabilityDowngradeCompressed(t *testing.T) {
	for _, d := range []tensor.Dtype{tensor.F32, tensor.F16, tensor.I8} {
		meshes, err := NewTCPClusterOpts(2, func(rank int) MeshOptions {
			if rank == 1 {
				return MeshOptions{Caps: CapsAll &^ (CapF32 | CapF16 | CapI8)}
			}
			return MeshOptions{}
		})
		if err != nil {
			t.Fatal(err)
		}
		payload := []float64{1.25, -3.7e-3, 99.5, 0, 2.625}
		want := append([]float64(nil), payload...)
		tensor.RoundTrip(d, want)

		done := make(chan error, 1)
		go func() {
			done <- meshes[0].Send(1, Message{Type: MsgChunk, Dtype: d, Payload: payload})
		}()
		msg, err := meshes[1].Recv(0)
		if err != nil || <-done != nil {
			t.Fatalf("dtype %v downgrade send failed: %v", d, err)
		}
		if msg.Dtype != tensor.F64 {
			t.Errorf("dtype %v arrived as %v, want downgraded F64", d, msg.Dtype)
		}
		for i := range want {
			if math.Float64bits(msg.Payload[i]) != math.Float64bits(want[i]) {
				t.Errorf("dtype %v elem %d: got %v, want %v", d, i, msg.Payload[i], want[i])
			}
		}
		// The caller's buffer must not have been quantized in place.
		if payload[1] != -3.7e-3 {
			t.Errorf("dtype %v: sender buffer mutated to %v", d, payload[1])
		}
		for _, m := range meshes {
			_ = m.Close()
		}
	}
}

// TestCapabilityGateSparseAndStreams: frames the peer declared itself unable
// to decode are rejected typed at send, before any bytes hit the wire.
func TestCapabilityGateSparseAndStreams(t *testing.T) {
	meshes, err := NewTCPClusterOpts(2, func(rank int) MeshOptions {
		if rank == 1 {
			return MeshOptions{Caps: CapF32} // no sparse, no streams
		}
		return MeshOptions{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	sparse := Message{Type: MsgReduce, Payload: []float64{1}, Indices: []int32{4}}
	if err := meshes[0].Send(1, sparse); !errors.Is(err, ErrCapability) {
		t.Errorf("sparse send err = %v, want ErrCapability", err)
	}
	if err := meshes[0].StreamView(2).Send(1, Message{Type: MsgChunk}); !errors.Is(err, ErrCapability) {
		t.Errorf("stream send err = %v, want ErrCapability", err)
	}
	// The negotiated mesh set reflects the weakest rank on BOTH endpoints, so
	// SPMD code branches identically everywhere.
	for r, m := range meshes {
		if m.Caps()&CapSparse != 0 || m.Caps()&CapStreams != 0 {
			t.Errorf("rank %d caps %v still advertise gated features", r, m.Caps())
		}
		if MeshCaps(m) != m.Caps() {
			t.Errorf("rank %d MeshCaps %v != Caps %v", r, MeshCaps(m), m.Caps())
		}
	}
	// Loopback is ungated: a rank can always decode its own frames.
	if err := meshes[1].StreamView(2).Send(1, Message{Type: MsgChunk, Iter: 8}); err != nil {
		t.Fatalf("loopback stream send: %v", err)
	}
	msg, err := meshes[1].StreamView(2).Recv(1)
	if err != nil || msg.Iter != 8 {
		t.Fatalf("loopback stream recv: %+v, %v", msg, err)
	}
}

// TestCapabilityGatePS: parameter-server frames toward a peer built before
// the PS family (no CapPS in its hello) are rejected typed at send — the
// old decoder would treat the unknown types as malformed frames and tear
// the connection down, so the frames must never leave.
func TestCapabilityGatePS(t *testing.T) {
	meshes, err := NewTCPClusterOpts(2, func(rank int) MeshOptions {
		if rank == 1 {
			return MeshOptions{Caps: CapsAll &^ CapPS}
		}
		return MeshOptions{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	for _, typ := range []MsgType{MsgPSPush, MsgPSPull, MsgPSPushPull, MsgPSAck} {
		if err := meshes[0].Send(1, Message{Type: typ, Payload: []float64{1}}); !errors.Is(err, ErrCapability) {
			t.Errorf("type %d send err = %v, want ErrCapability", typ, err)
		}
	}
	// Non-PS traffic to the same peer still flows.
	go func() { _ = meshes[0].Send(1, Message{Type: MsgChunk, Iter: 5, Payload: []float64{2}}) }()
	msg, err := meshes[1].Recv(0)
	if err != nil || msg.Iter != 5 {
		t.Fatalf("plain frame after gating: %+v, %v", msg, err)
	}
	// A full-capability pair carries PS frames end to end.
	if err := meshes[1].Send(1, Message{Type: MsgPSAck, Iter: 9}); err != nil {
		t.Fatalf("loopback ps send: %v", err)
	}
	if msg, err := meshes[1].Recv(1); err != nil || msg.Iter != 9 {
		t.Fatalf("loopback ps recv: %+v, %v", msg, err)
	}
}

// TestSetLinkRateConcurrent: SetLinkRate racing in-flight sends must be a
// clean atomic handoff (run under -race).
func TestSetLinkRateConcurrent(t *testing.T) {
	meshes, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	const msgs = 50
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rates := []float64{0, 1 << 30, 64 << 20, 0}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				meshes[0].SetLinkRate(rates[i%len(rates)])
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			if err := meshes[0].Send(1, Message{Type: MsgChunk, Iter: int64(i), Payload: []float64{float64(i)}}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < msgs; i++ {
		msg, err := meshes[1].Recv(0)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if msg.Iter != int64(i) {
			t.Fatalf("recv %d: iter %d", i, msg.Iter)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSetPeerLinkRateConcurrent: the per-peer pacing override racing
// in-flight sends (and the global setter) must be a clean atomic handoff —
// the asymmetric-fabric analogue of TestSetLinkRateConcurrent (run under
// -race).
func TestSetPeerLinkRateConcurrent(t *testing.T) {
	meshes, err := NewTCPCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	const msgs = 50
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rates := []float64{0, 1 << 30, 64 << 20, 16 << 20}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if err := meshes[0].SetPeerLinkRate(1+i%2, rates[i%len(rates)]); err != nil {
					t.Errorf("set peer rate: %v", err)
					return
				}
				meshes[0].SetLinkRate(rates[(i+1)%len(rates)])
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			for _, to := range []int{1, 2} {
				if err := meshes[0].Send(to, Message{Type: MsgChunk, Iter: int64(i), Payload: []float64{float64(i)}}); err != nil {
					t.Errorf("send %d to %d: %v", i, to, err)
					return
				}
			}
		}
	}()
	for _, from := range []int{1, 2} {
		for i := 0; i < msgs; i++ {
			msg, err := meshes[from].Recv(0)
			if err != nil {
				t.Fatalf("rank %d recv %d: %v", from, i, err)
			}
			if msg.Iter != int64(i) {
				t.Fatalf("rank %d recv %d: iter %d", from, i, msg.Iter)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestSetPeerLinkRateAsymmetric: a per-peer override actually paces only
// that connection — the peer left on the (fast) global rate must not be
// slowed, and clearing the override restores the global pace.
func TestSetPeerLinkRateAsymmetric(t *testing.T) {
	meshes, err := NewTCPCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	if err := meshes[0].SetPeerLinkRate(3, 1); err == nil {
		t.Fatal("out-of-range peer accepted")
	}
	payload := make([]float64, 32<<10) // 256 KiB
	const slowRate = 16e6              // 256 KiB at 16 MB/s ≈ 16 ms
	if err := meshes[0].SetPeerLinkRate(1, slowRate); err != nil {
		t.Fatal(err)
	}
	elapse := func(to int) time.Duration {
		start := time.Now()
		if err := meshes[0].Send(to, Message{Type: MsgChunk, Iter: 1, Payload: payload}); err != nil {
			t.Fatalf("send to %d: %v", to, err)
		}
		d := time.Since(start)
		if _, err := meshes[to].Recv(0); err != nil {
			t.Fatalf("recv at %d: %v", to, err)
		}
		return d
	}
	slow := elapse(1)
	fast := elapse(2)
	want := time.Duration(float64(len(payload)*8) / slowRate * 1e9)
	if slow < want/2 {
		t.Fatalf("paced send took %v, want >= %v", slow, want/2)
	}
	if fast > want/2 {
		t.Fatalf("unpaced peer took %v, override leaked across connections", fast)
	}
	// Clearing the override falls back to the (unset) global rate.
	if err := meshes[0].SetPeerLinkRate(1, 0); err != nil {
		t.Fatal(err)
	}
	if d := elapse(1); d > want/2 {
		t.Fatalf("cleared override still paced: %v", d)
	}
}
