package transport

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// TestStreamFieldWireRoundTrip: the stream id travels in its own frame
// header field — it must round-trip the wire codec exactly, alongside the
// full int64 iter range the old high-bit packing could not carry.
func TestStreamFieldWireRoundTrip(t *testing.T) {
	cases := []struct {
		stream int32
		iter   int64
	}{
		{0, 0}, {0, 1}, {1, 0}, {7, 42}, {1000, -3}, {32767, 123456789},
		{5, 1 << 62}, {2, math.MaxInt64}, {9, math.MinInt64},
	}
	for _, c := range cases {
		buf, err := Encode(nil, Message{Type: MsgChunk, Stream: c.stream, Iter: c.iter})
		if err != nil {
			t.Fatalf("encode(stream=%d, iter=%d): %v", c.stream, c.iter, err)
		}
		got, err := ReadMessage(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("decode(stream=%d, iter=%d): %v", c.stream, c.iter, err)
		}
		if got.Stream != c.stream || got.Iter != c.iter {
			t.Errorf("round trip (stream=%d, iter=%d) -> (%d, %d)", c.stream, c.iter, got.Stream, got.Iter)
		}
	}
	// Negative stream ids are unrepresentable by contract: the encoder
	// refuses them rather than aliasing into the unsigned wire field.
	if _, err := Encode(nil, Message{Type: MsgChunk, Stream: -1}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("negative stream encode err = %v, want ErrBadFrame", err)
	}
}

// TestStreamsHelperPicksNativeRouter: Streams() must hand back the mesh's
// own router when the transport routes stream frames natively, and fall back
// to a demux otherwise.
func TestStreamsHelperPicksNativeRouter(t *testing.T) {
	meshes, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	if _, ok := Streams(meshes[0]).(*TCPMesh); !ok {
		t.Errorf("Streams(TCPMesh) = %T, want the mesh itself", Streams(meshes[0]))
	}
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	if _, ok := Streams(net.endpoints[0]).(*StreamDemux); !ok {
		t.Errorf("Streams(localMesh) = %T, want *StreamDemux", Streams(net.endpoints[0]))
	}
}

// TestStreamDemuxIsolation: two streams between the same pair of peers see
// only their own messages, in order, regardless of the interleaving the
// sender chose.
func TestStreamDemuxIsolation(t *testing.T) {
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	d0 := NewStreamDemux(net.endpoints[0])
	d1 := NewStreamDemux(net.endpoints[1])

	// Rank 1 interleaves sends on streams 0, 1, 2; rank 0 receives per
	// stream and must see exactly that stream's Iter sequence.
	const perStream = 20
	send := d1.Stream(0)
	sendB := d1.Stream(1)
	sendC := d1.Stream(2)
	go func() {
		for i := 0; i < perStream; i++ {
			_ = sendB.Send(0, Message{Type: MsgChunk, Iter: int64(i), Chunk: 1})
			_ = send.Send(0, Message{Type: MsgChunk, Iter: int64(i), Chunk: 0})
			_ = sendC.Send(0, Message{Type: MsgChunk, Iter: int64(i), Chunk: 2})
		}
	}()

	var wg sync.WaitGroup
	for id := int32(0); id < 3; id++ {
		id := id
		view := d0.Stream(id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perStream; i++ {
				msg, err := view.Recv(1)
				if err != nil {
					t.Errorf("stream %d recv %d: %v", id, i, err)
					return
				}
				if msg.Iter != int64(i) || msg.Chunk != id {
					t.Errorf("stream %d recv %d: got iter=%d chunk=%d", id, i, msg.Iter, msg.Chunk)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestStreamDemuxConcurrentPairs hammers many streams concurrently in both
// directions between two ranks; every stream must observe its own ordered
// sequence. Run under -race this also exercises the pull-lock routing.
func TestStreamDemuxConcurrentPairs(t *testing.T) {
	const streams = 8
	const msgs = 50
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	demux := []*StreamDemux{NewStreamDemux(net.endpoints[0]), NewStreamDemux(net.endpoints[1])}

	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		peer := 1 - rank
		for id := int32(0); id < streams; id++ {
			view := demux[rank].Stream(id)
			wg.Add(2)
			go func(v Mesh) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					if err := v.Send(peer, Message{Type: MsgChunk, Iter: int64(i)}); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}(view)
			go func(v Mesh, id int32) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					msg, err := v.Recv(peer)
					if err != nil {
						t.Errorf("stream %d recv: %v", id, err)
						return
					}
					if msg.Iter != int64(i) {
						t.Errorf("stream %d: iter %d at position %d", id, msg.Iter, i)
						return
					}
				}
			}(view, id)
		}
	}
	wg.Wait()
}

// TestStreamDemuxPayloadRouting checks payload integrity through the stray
// routing path: a message parked on another stream's queue must surface
// unmodified.
func TestStreamDemuxPayloadRouting(t *testing.T) {
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	d0 := NewStreamDemux(net.endpoints[0])
	d1 := NewStreamDemux(net.endpoints[1])

	// Send on stream 5 first, then stream 2; receive stream 2 first so the
	// stream-5 message takes the routed path.
	pay5 := []float64{5, 55, 555}
	pay2 := []float64{2, 22}
	if err := d1.Stream(5).Send(0, Message{Type: MsgChunk, Iter: 9, Payload: pay5}); err != nil {
		t.Fatal(err)
	}
	if err := d1.Stream(2).Send(0, Message{Type: MsgChunk, Iter: 4, Payload: pay2}); err != nil {
		t.Fatal(err)
	}
	got2, err := d0.Stream(2).Recv(1)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Iter != 4 || len(got2.Payload) != 2 || got2.Payload[0] != 2 {
		t.Fatalf("stream 2 got %+v", got2)
	}
	got5, err := d0.Stream(5).Recv(1)
	if err != nil {
		t.Fatal(err)
	}
	if got5.Iter != 9 || len(got5.Payload) != 3 || got5.Payload[2] != 555 {
		t.Fatalf("stream 5 got %+v", got5)
	}
}

// TestStreamDemuxFullIterRange: stream views no longer steal Iter's high
// bits, so iters the old packing rejected must now flow through a view on
// both send paths.
func TestStreamDemuxFullIterRange(t *testing.T) {
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	d0 := NewStreamDemux(net.endpoints[0])
	d1 := NewStreamDemux(net.endpoints[1])
	v := d1.Stream(1)
	if err := v.Send(0, Message{Type: MsgChunk, Iter: math.MaxInt64}); err != nil {
		t.Fatalf("Send err = %v", err)
	}
	pay := GetPayload(4)
	if err := v.(OwnedSender).SendOwned(0, Message{Type: MsgChunk, Iter: -1, Payload: pay}); err != nil {
		t.Fatalf("SendOwned err = %v", err)
	}
	for _, want := range []int64{math.MaxInt64, -1} {
		msg, err := d0.Stream(1).Recv(1)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Iter != want {
			t.Errorf("iter = %d, want %d", msg.Iter, want)
		}
	}
}

// TestStreamDemuxClosePropagates: closing the parent fails every blocked
// stream Recv with ErrClosed.
func TestStreamDemuxClosePropagates(t *testing.T) {
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	d := NewStreamDemux(net.endpoints[0])
	errs := make(chan error, 3)
	for id := int32(0); id < 3; id++ {
		view := d.Stream(id)
		go func() {
			_, err := view.Recv(1)
			errs <- err
		}()
	}
	_ = net.Close()
	for i := 0; i < 3; i++ {
		if err := <-errs; !errors.Is(err, ErrClosed) {
			t.Errorf("recv err = %v, want ErrClosed", err)
		}
	}
}

// TestStreamDemuxOverTCP runs the isolation scenario over the real TCP
// transport: the stream id must survive the wire encode/decode of Iter.
func TestStreamDemuxOverTCP(t *testing.T) {
	meshes, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	d0 := NewStreamDemux(meshes[0])
	d1 := NewStreamDemux(meshes[1])
	const perStream = 10
	go func() {
		for i := 0; i < perStream; i++ {
			for id := int32(0); id < 3; id++ {
				_ = d1.Stream(id).Send(0, Message{Type: MsgChunk, Iter: int64(i), Chunk: id, Payload: []float64{float64(int(id)*100 + i)}})
			}
		}
	}()
	var wg sync.WaitGroup
	for id := int32(0); id < 3; id++ {
		id := id
		view := d0.Stream(id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perStream; i++ {
				msg, err := view.Recv(1)
				if err != nil {
					t.Errorf("stream %d: %v", id, err)
					return
				}
				want := float64(int(id)*100 + i)
				if msg.Iter != int64(i) || len(msg.Payload) != 1 || msg.Payload[0] != want {
					t.Errorf("stream %d pos %d: %+v", id, i, msg)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestStreamDemuxRecvBadRank mirrors the mesh contract for out-of-range
// peers.
func TestStreamDemuxRecvBadRank(t *testing.T) {
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	v := NewStreamDemux(net.endpoints[0]).Stream(0)
	for _, from := range []int{-1, 2, 99} {
		if _, err := v.Recv(from); err == nil {
			t.Errorf("recv from %d accepted", from)
		}
	}
	if v.Rank() != 0 || v.Size() != 2 {
		t.Errorf("view identity: rank %d size %d", v.Rank(), v.Size())
	}
	_ = fmt.Sprintf("%v", v)
}

// TestTCPStreamRoutedDeliveryWhilePullerParked is the TCP-native analogue of
// TestStreamDemuxRoutedDeliveryWhilePullerParked: the mesh's own read
// election must deliver a routed stream's frame while another stream's
// consumer stays parked in the socket read.
func TestTCPStreamRoutedDeliveryWhilePullerParked(t *testing.T) {
	meshes, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()

	// Stream 0 on rank 0 parks first (its frame is sent last).
	got0 := make(chan error, 1)
	go func() {
		msg, err := meshes[0].Recv(1)
		if err == nil && msg.Iter != 7 {
			err = fmt.Errorf("stream 0 got iter %d", msg.Iter)
		}
		got0 <- err
	}()
	time.Sleep(50 * time.Millisecond)

	got1 := make(chan error, 1)
	go func() {
		msg, err := meshes[0].StreamView(1).Recv(1)
		if err == nil && msg.Iter != 3 {
			err = fmt.Errorf("stream 1 got iter %d", msg.Iter)
		}
		got1 <- err
	}()
	time.Sleep(50 * time.Millisecond)

	if err := meshes[1].StreamView(1).Send(0, Message{Type: MsgReduce, Iter: 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got1:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream 1 never received its routed frame")
	}

	if err := meshes[1].Send(0, Message{Type: MsgReduce, Iter: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got0:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked reader never received its own frame")
	}
}

// TestStreamDemuxRoutedDeliveryWhilePullerParked pins the liveness property
// that makes concurrent bucket collectives safe: a stream whose message is
// routed by the elected puller must receive it even though the puller stays
// parked in parent.Recv. With a mutex election the waiter would be committed
// to the lock acquire, blind to its own queue, and a distributed cycle
// (puller's message depending on the waiter's progress) would deadlock.
func TestStreamDemuxRoutedDeliveryWhilePullerParked(t *testing.T) {
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	d0 := NewStreamDemux(net.endpoints[0])
	d1 := NewStreamDemux(net.endpoints[1])

	// Stream 0 on rank 0 starts first and wins the pull election for peer 1,
	// then parks in parent.Recv: its message is deliberately sent last.
	got0 := make(chan error, 1)
	go func() {
		msg, err := d0.Stream(0).Recv(1)
		if err == nil && msg.Iter != 7 {
			err = fmt.Errorf("stream 0 got iter %d", msg.Iter)
		}
		got0 <- err
	}()
	time.Sleep(50 * time.Millisecond)

	// Stream 1 on rank 0 now waits behind the parked puller.
	got1 := make(chan error, 1)
	go func() {
		msg, err := d0.Stream(1).Recv(1)
		if err == nil && msg.Iter != 3 {
			err = fmt.Errorf("stream 1 got iter %d", msg.Iter)
		}
		got1 <- err
	}()
	time.Sleep(50 * time.Millisecond)

	// Rank 1 sends stream 1's message: the parked puller routes it, and
	// stream 1 must complete while the puller keeps waiting.
	if err := d1.Stream(1).Send(0, Message{Type: MsgReduce, Iter: 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got1:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream 1 never received its routed message (waiter blind to its queue)")
	}

	// Only now release the puller.
	if err := d1.Stream(0).Send(0, Message{Type: MsgReduce, Iter: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got0:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked puller never received its own message")
	}
}
