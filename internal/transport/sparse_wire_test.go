package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"repro/internal/tensor"
)

// Wire-format tests for sparse (index+value) messages — the top-k gradient
// exchange format. Companion to the dtype fuzz tests in fuzz_test.go.

func sparseSeed(n int) Message {
	m := Message{Type: MsgReduce, Iter: 42, Chunk: 7}
	m.Payload = make([]float64, n)
	m.Indices = make([]int32, n)
	for i := range m.Payload {
		m.Payload[i] = float64(i)*1.5 - 3
		m.Indices[i] = int32(i * 13)
	}
	return m
}

// TestSparseMessageRoundTrip: a sparse frame must decode to exactly the
// indices and values it was encoded from, across the dtypes the collective
// ships.
func TestSparseMessageRoundTrip(t *testing.T) {
	for _, d := range []tensor.Dtype{tensor.F64, tensor.F32} {
		msg := sparseSeed(9)
		msg.Dtype = d
		buf, err := Encode(nil, msg)
		if err != nil {
			t.Fatal(err)
		}
		if want := headerBytes + 4*len(msg.Indices) + d.WireBytes(len(msg.Payload)); len(buf) != want {
			t.Fatalf("dtype %v sparse frame is %d bytes, want %d", d, len(buf), want)
		}
		got, err := ReadMessage(bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Indices) != len(msg.Indices) || len(got.Payload) != len(msg.Payload) {
			t.Fatalf("lengths %d/%d, want %d/%d", len(got.Indices), len(got.Payload), len(msg.Indices), len(msg.Payload))
		}
		for i := range msg.Indices {
			if got.Indices[i] != msg.Indices[i] {
				t.Errorf("dtype %v index %d = %d, want %d", d, i, got.Indices[i], msg.Indices[i])
			}
		}
		want := append([]float64(nil), msg.Payload...)
		tensor.RoundTrip(d, want)
		for i := range want {
			if math.Float64bits(got.Payload[i]) != math.Float64bits(want[i]) {
				t.Errorf("dtype %v value %d = %v, want %v", d, i, got.Payload[i], want[i])
			}
		}
	}
}

// TestSparseMessageEncodeMismatch: the encoder must refuse index/value
// length disagreements rather than emit a frame no decoder accepts.
func TestSparseMessageEncodeMismatch(t *testing.T) {
	msg := sparseSeed(4)
	msg.Indices = msg.Indices[:3]
	if _, err := Encode(nil, msg); !errors.Is(err, ErrSparseMismatch) {
		t.Errorf("mismatched encode error = %v, want ErrSparseMismatch", err)
	}
}

// TestSparseMessageTruncated: frames cut in the header, mid-index-list, or
// mid-payload must error, never hang or deliver partial data.
func TestSparseMessageTruncated(t *testing.T) {
	msg := sparseSeed(16)
	buf, err := Encode(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{
		headerBytes - 1,         // inside the header
		headerBytes,             // before any index byte
		headerBytes + 1,         // mid-index
		headerBytes + 4*16 - 2,  // last index cut short
		headerBytes + 4*16,      // indices intact, payload missing
		headerBytes + 4*16 + 11, // mid-value
		len(buf) - 1,            // one byte short
	}
	for _, cut := range cuts {
		if _, err := ReadMessage(bytes.NewReader(buf[:cut])); err == nil {
			t.Errorf("frame truncated at %d decoded without error", cut)
		}
	}
	if _, err := ReadMessage(bytes.NewReader(buf)); err != nil {
		t.Errorf("intact frame failed: %v", err)
	}
}

// TestSparseMessageGarbageCounts: forged headers whose index count
// disagrees with the payload length, or exceeds the global payload bound,
// must be rejected before any allocation-scale damage.
func TestSparseMessageGarbageCounts(t *testing.T) {
	msg := sparseSeed(8)
	buf, err := Encode(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	forge := func(nidx uint32) []byte {
		f := append([]byte(nil), buf...)
		binary.LittleEndian.PutUint32(f[26:], nidx)
		return f
	}
	if _, err := ReadMessage(bytes.NewReader(forge(7))); !errors.Is(err, ErrSparseMismatch) {
		t.Errorf("nidx<len error = %v, want ErrSparseMismatch", err)
	}
	if _, err := ReadMessage(bytes.NewReader(forge(9))); !errors.Is(err, ErrSparseMismatch) {
		t.Errorf("nidx>len error = %v, want ErrSparseMismatch", err)
	}
	// nidx == len(payload) but the count is absurd: the payload-length bound
	// fires first on the forged len field.
	f := append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(f[22:], MaxPayloadElems+1)
	binary.LittleEndian.PutUint32(f[26:], MaxPayloadElems+1)
	if _, err := ReadMessage(bytes.NewReader(f)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("oversized sparse frame error = %v, want ErrPayloadTooLarge", err)
	}
}

// TestSparseSendThroughLocalMesh: the in-memory mesh must deliver sparse
// messages by value — the receiver's index slice must not alias the
// sender's.
func TestSparseSendThroughLocalMesh(t *testing.T) {
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	eps := net.Endpoints()
	msg := sparseSeed(5)
	sent := append([]int32(nil), msg.Indices...)
	if err := eps[0].Send(1, msg); err != nil {
		t.Fatal(err)
	}
	msg.Indices[0] = -999 // sender keeps mutating its buffers
	msg.Payload[0] = -999
	got, err := eps[1].Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sent {
		if got.Indices[i] != sent[i] {
			t.Errorf("index %d = %d, want %d (aliasing?)", i, got.Indices[i], sent[i])
		}
	}
	if got.Payload[0] == -999 {
		t.Error("payload aliases the sender's buffer")
	}
}
