package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"repro/internal/tensor"
)

// Wire-format tests for sparse (index+value) messages — the top-k gradient
// exchange format. Companion to the dtype fuzz tests in fuzz_test.go.

func sparseSeed(n int) Message {
	m := Message{Type: MsgReduce, Iter: 42, Chunk: 7}
	m.Payload = make([]float64, n)
	m.Indices = make([]int32, n)
	for i := range m.Payload {
		m.Payload[i] = float64(i)*1.5 - 3
		m.Indices[i] = int32(i * 13)
	}
	return m
}

// TestSparseMessageRoundTrip: a sparse frame must decode to exactly the
// indices and values it was encoded from, across the dtypes the collective
// ships.
func TestSparseMessageRoundTrip(t *testing.T) {
	for _, d := range []tensor.Dtype{tensor.F64, tensor.F32} {
		msg := sparseSeed(9)
		msg.Dtype = d
		buf, err := Encode(nil, msg)
		if err != nil {
			t.Fatal(err)
		}
		if want := frameHeaderBytes + 4*len(msg.Indices) + d.WireBytes(len(msg.Payload)); len(buf) != want {
			t.Fatalf("dtype %v sparse frame is %d bytes, want %d", d, len(buf), want)
		}
		got, err := ReadMessage(bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Indices) != len(msg.Indices) || len(got.Payload) != len(msg.Payload) {
			t.Fatalf("lengths %d/%d, want %d/%d", len(got.Indices), len(got.Payload), len(msg.Indices), len(msg.Payload))
		}
		for i := range msg.Indices {
			if got.Indices[i] != msg.Indices[i] {
				t.Errorf("dtype %v index %d = %d, want %d", d, i, got.Indices[i], msg.Indices[i])
			}
		}
		want := append([]float64(nil), msg.Payload...)
		tensor.RoundTrip(d, want)
		for i := range want {
			if math.Float64bits(got.Payload[i]) != math.Float64bits(want[i]) {
				t.Errorf("dtype %v value %d = %v, want %v", d, i, got.Payload[i], want[i])
			}
		}
	}
}

// TestSparseMessageEncodeMismatch: the encoder must refuse index/value
// length disagreements rather than emit a frame no decoder accepts.
func TestSparseMessageEncodeMismatch(t *testing.T) {
	msg := sparseSeed(4)
	msg.Indices = msg.Indices[:3]
	if _, err := Encode(nil, msg); !errors.Is(err, ErrSparseMismatch) {
		t.Errorf("mismatched encode error = %v, want ErrSparseMismatch", err)
	}
}

// TestSparseMessageTruncated: frames cut in the header, mid-index-list, or
// mid-payload must error, never hang or deliver partial data.
func TestSparseMessageTruncated(t *testing.T) {
	msg := sparseSeed(16)
	buf, err := Encode(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{
		frameHeaderBytes - 1,         // inside the header
		frameHeaderBytes,             // before any index byte
		frameHeaderBytes + 1,         // mid-index
		frameHeaderBytes + 4*16 - 2,  // last index cut short
		frameHeaderBytes + 4*16,      // indices intact, payload missing
		frameHeaderBytes + 4*16 + 11, // mid-value
		len(buf) - 1,                 // one byte short
	}
	for _, cut := range cuts {
		if _, err := ReadMessage(bytes.NewReader(buf[:cut])); err == nil {
			t.Errorf("frame truncated at %d decoded without error", cut)
		}
	}
	if _, err := ReadMessage(bytes.NewReader(buf)); err != nil {
		t.Errorf("intact frame failed: %v", err)
	}
}

// TestSparseMessageGarbageCounts: the v1 frame cannot EXPRESS an
// index/value count mismatch (sparse frames carry exactly one index per
// element), so the forgeries that remain are flag/length contradictions and
// absurd element counts — all of which must be rejected before any
// allocation-scale damage.
func TestSparseMessageGarbageCounts(t *testing.T) {
	msg := sparseSeed(8)
	buf, err := Encode(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Clearing the sparse flag leaves a frame whose length prefix still
	// includes the index bytes: a flag/len contradiction.
	f := append([]byte(nil), buf...)
	f[6] &^= FlagSparse
	if _, err := ReadMessage(bytes.NewReader(f)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("cleared sparse flag error = %v, want ErrBadFrame", err)
	}
	// Setting the sparse flag on a dense frame is the mirror-image forgery.
	dense, err := Encode(nil, Message{Type: MsgChunk, Payload: []float64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	dense[6] |= FlagSparse
	if _, err := ReadMessage(bytes.NewReader(dense)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("forged sparse flag error = %v, want ErrBadFrame", err)
	}
	// An absurd element count trips the global bound before the length
	// prefix is even consulted.
	f = append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(f[32:], MaxPayloadElems+1)
	if _, err := ReadMessage(bytes.NewReader(f)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("oversized sparse frame error = %v, want ErrPayloadTooLarge", err)
	}
	// The encoder still refuses a caller-side mismatch (see
	// TestSparseMessageEncodeMismatch); the wire simply cannot carry one.
}

// TestSparseSendThroughLocalMesh: the in-memory mesh must deliver sparse
// messages by value — the receiver's index slice must not alias the
// sender's.
func TestSparseSendThroughLocalMesh(t *testing.T) {
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	eps := net.Endpoints()
	msg := sparseSeed(5)
	sent := append([]int32(nil), msg.Indices...)
	if err := eps[0].Send(1, msg); err != nil {
		t.Fatal(err)
	}
	msg.Indices[0] = -999 // sender keeps mutating its buffers
	msg.Payload[0] = -999
	got, err := eps[1].Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sent {
		if got.Indices[i] != sent[i] {
			t.Errorf("index %d = %d, want %d (aliasing?)", i, got.Indices[i], sent[i])
		}
	}
	if got.Payload[0] == -999 {
		t.Error("payload aliases the sender's buffer")
	}
}
