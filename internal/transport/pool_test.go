package transport

import "testing"

func TestPoolClass(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{64, 6}, {65, 7}, {1 << 20, 20}, {1<<20 + 1, 21},
	}
	for _, c := range cases {
		if got := poolClass(c.n); got != c.want {
			t.Errorf("poolClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestCapClass(t *testing.T) {
	cases := []struct{ c, want int }{
		{0, -1}, {63, -1}, // below minPooledElems: not poolable
		{64, 6}, {127, 6}, {128, 7},
		{1 << 24, 24}, {1 << 25, -1}, // above maxPoolClass: not poolable
	}
	for _, c := range cases {
		if got := capClass(c.c); got != c.want {
			t.Errorf("capClass(%d) = %d, want %d", c.c, got, c.want)
		}
	}
}

func TestGetPayloadShape(t *testing.T) {
	if p := GetPayload(0); p != nil {
		t.Errorf("GetPayload(0) = %v, want nil", p)
	}
	for _, n := range []int{1, 63, 64, 65, 100, 1 << 10, 1<<10 + 1} {
		p := GetPayload(n)
		if len(p) != n {
			t.Fatalf("GetPayload(%d) len = %d", n, len(p))
		}
		if n >= minPooledElems {
			if c := cap(p); c&(c-1) != 0 {
				t.Errorf("GetPayload(%d) cap = %d, want power of two", n, c)
			}
		}
		PutPayload(p)
	}
	// Put of unpoolable slices must be a safe no-op.
	PutPayload(nil)
	PutPayload(make([]float64, 3))
}

// TestGetPutRoundTrip checks that a released buffer can serve any request
// that fits its class, at the requested length.
func TestGetPutRoundTrip(t *testing.T) {
	p := GetPayload(100) // class 7, cap 128
	for i := range p {
		p[i] = float64(i)
	}
	PutPayload(p)
	q := GetPayload(128)
	if len(q) != 128 || cap(q) < 128 {
		t.Fatalf("recycled Get len=%d cap=%d", len(q), cap(q))
	}
	PutPayload(q)
}

// TestSendDoesNotAliasPayload locks in the ownership contract for plain
// Send: the sender keeps its buffer, so mutating it after Send must not be
// visible to the receiver.
func TestSendDoesNotAliasPayload(t *testing.T) {
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)

	buf := make([]float64, 100)
	for i := range buf {
		buf[i] = float64(i)
	}
	if err := ep0.Send(1, Message{Type: MsgChunk, Payload: buf}); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = -1 // sender scribbles over its buffer after Send
	}
	msg, err := ep1.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range msg.Payload {
		if x != float64(i) {
			t.Fatalf("payload[%d] = %v after sender mutation, want %v", i, x, float64(i))
		}
	}
	PutPayload(msg.Payload)
}

// TestSendOwnedTransfersBuffer: the in-memory mesh must deliver the very
// buffer passed to SendOwned, with no copy in between.
func TestSendOwnedTransfersBuffer(t *testing.T) {
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)

	buf := GetPayload(100)
	for i := range buf {
		buf[i] = float64(2 * i)
	}
	if err := SendOwned(ep0, 1, Message{Type: MsgChunk, Payload: buf}); err != nil {
		t.Fatal(err)
	}
	msg, err := ep1.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Payload) != 100 || &msg.Payload[0] != &buf[0] {
		t.Fatalf("SendOwned copied the payload (got len %d)", len(msg.Payload))
	}
	PutPayload(msg.Payload)
}

// TestSendOwnedFallback: the generic SendOwned helper must work (and release
// the buffer) on meshes without a native ownership-transfer path.
func TestSendOwnedFallback(t *testing.T) {
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)

	buf := GetPayload(64)
	for i := range buf {
		buf[i] = float64(i)
	}
	// copyOnlyMesh hides the OwnedSender capability.
	if err := SendOwned(copyOnlyMesh{ep0}, 1, Message{Type: MsgChunk, Payload: buf}); err != nil {
		t.Fatal(err)
	}
	msg, err := ep1.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range msg.Payload {
		if x != float64(i) {
			t.Fatalf("payload[%d] = %v, want %v", i, x, float64(i))
		}
	}
	PutPayload(msg.Payload)
}

// copyOnlyMesh wraps a Mesh and exposes only the base interface, so the
// SendOwned helper must take its copying fallback.
type copyOnlyMesh struct{ m Mesh }

func (c copyOnlyMesh) Rank() int                      { return c.m.Rank() }
func (c copyOnlyMesh) Size() int                      { return c.m.Size() }
func (c copyOnlyMesh) Send(to int, m Message) error   { return c.m.Send(to, m) }
func (c copyOnlyMesh) Recv(from int) (Message, error) { return c.m.Recv(from) }
func (c copyOnlyMesh) Close() error                   { return c.m.Close() }
