package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"math"
	"net"
	"time"
	"unsafe"

	"repro/internal/tensor"
)

// Zero-copy field codecs.
//
// The v1 wire format is little-endian, which is also the byte order of every
// platform this repo targets. When host and wire order agree, a []float64 or
// []int32 payload IS its wire encoding — the codec reinterprets the backing
// array as bytes instead of converting element by element, and the send path
// hands those byte views to writev untouched. The big-endian fallback
// converts through encoding/binary, so correctness never depends on the
// fast path.

// hostLittleEndian reports whether the host's memory order matches the wire.
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// f64Bytes returns p's backing array viewed as wire bytes, or nil when the
// host byte order does not match the wire (callers must then fall back to a
// converting codec). The view aliases p: it is valid only while p is, and
// writes through either alias are visible in both.
func f64Bytes(p []float64) []byte {
	if !hostLittleEndian || len(p) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&p[0])), 8*len(p))
}

// i32Bytes is f64Bytes for index lists.
func i32Bytes(p []int32) []byte {
	if !hostLittleEndian || len(p) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&p[0])), 4*len(p))
}

// encodePayload writes src's wire encoding under dtype d into dst, which
// must hold d.WireBytes(len(src)) bytes.
func encodePayload(dst []byte, d tensor.Dtype, src []float64) {
	if d != tensor.F64 {
		tensor.Pack(d, dst[:d.WireBytes(len(src))], src)
		return
	}
	if b := f64Bytes(src); b != nil {
		copy(dst, b)
		return
	}
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

// encodeIndices writes idx's wire encoding into dst (4·len(idx) bytes).
func encodeIndices(dst []byte, idx []int32) {
	if b := i32Bytes(idx); b != nil {
		copy(dst, b)
		return
	}
	for i, v := range idx {
		binary.LittleEndian.PutUint32(dst[4*i:], uint32(v))
	}
}

// decodeF64From fills dst with float64s decoded straight out of br's peek
// window — no staging buffer between the socket and the pooled payload. Each
// round consumes the whole-element prefix of what is buffered (blocking for
// at most one element when the buffer runs dry), so the loop costs one
// Peek/Discard pair per socket fill rather than per element. It returns the
// number of elements decoded, which on error is the resume offset: the
// stream stops exactly at an element boundary (sub-element stragglers stay
// buffered in br), so a timed-out decode continues with dst[n:].
func decodeF64From(br *bufio.Reader, dst []float64) (int, error) {
	done := 0
	for len(dst) > 0 {
		b, err := peekElems(br, 8, 8*len(dst))
		if err != nil {
			return done, err
		}
		n := len(b) / 8
		if view := f64Bytes(dst[:n]); view != nil {
			copy(view, b)
		} else {
			for i := 0; i < n; i++ {
				dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
			}
		}
		if _, err := br.Discard(8 * n); err != nil {
			return done, err
		}
		dst = dst[n:]
		done += n
	}
	return done, nil
}

// decodeIndicesFrom is decodeF64From for the index list of a sparse frame.
func decodeIndicesFrom(br *bufio.Reader, dst []int32) (int, error) {
	done := 0
	for len(dst) > 0 {
		b, err := peekElems(br, 4, 4*len(dst))
		if err != nil {
			return done, err
		}
		n := len(b) / 4
		if view := i32Bytes(dst[:n]); view != nil {
			copy(view, b)
		} else {
			for i := 0; i < n; i++ {
				dst[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
			}
		}
		if _, err := br.Discard(4 * n); err != nil {
			return done, err
		}
		dst = dst[n:]
		done += n
	}
	return done, nil
}

// peekElems returns a whole-element prefix (element size elem bytes) of br's
// buffered data, at most limit bytes, blocking only when not even one
// element is buffered. The returned slice is valid until the next read or
// discard on br.
func peekElems(br *bufio.Reader, elem, limit int) ([]byte, error) {
	avail := br.Buffered()
	if avail < elem {
		// One blocking fill: ask for a single element so a slow sender
		// cannot stall us waiting for a window larger than it has sent.
		avail = elem
	}
	if avail > limit {
		avail = limit
	}
	avail -= avail % elem
	b, err := br.Peek(avail)
	if len(b) >= elem {
		return b[:len(b)-len(b)%elem], nil
	}
	return nil, err
}

// frameWriter coalesces outbound frames on one peer connection into batched
// vectored writes. Frame headers — and payloads small enough that copying
// beats another iovec — are encoded into a fixed arena; large f64 payloads
// and index lists are queued as zero-copy views of their backing arrays. A
// flush hands the queued iovec list to writev (net.Buffers), so a burst of
// small frames (ring chunk tails, control messages, bucketed-overlap heads)
// costs one syscall instead of one each.
//
// The writer is NOT self-flushing: callers own the flush boundary. The TCP
// mesh flushes on every Send unless another sender is already queued behind
// the connection lock (group commit — the last sender in the queue always
// flushes), so frames never sit in the arena while the connection is idle.
//
// Not safe for concurrent use; the TCP mesh serializes access per
// connection.
type frameWriter struct {
	conn net.Conn
	// stall, when non-nil, is invoked each time a flush's write deadline
	// expires (the TCP mesh drains its own receive side there). When nil,
	// flushes are plain blocking writes.
	stall func()

	// arena holds header bytes and copy-coalesced small bodies between
	// flushes. Fixed capacity: iovec entries alias it, so it must never
	// reallocate while frames are queued — enqueue flushes first when the
	// next frame does not fit.
	arena []byte
	// iov is the pending writev list, in frame order: arena regions
	// interleaved with zero-copy payload views. open tracks whether the
	// last entry is the still-growing arena tail (so consecutive arena
	// appends extend it instead of adding an entry per frame).
	iov  net.Buffers
	open bool

	// release lists: buffers owned by the writer until the flush that puts
	// their bytes on the wire.
	ownedPayloads [][]float64
	ownedIndices  [][]int32
	scratch       []*[]byte

	// armedUntil is the write deadline currently set on conn; flush re-arms
	// it only when less than flushMinRunway of runway remains (see flush).
	armedUntil time.Time
}

// arenaCap is the coalescing arena size. It bounds one flush's copied bytes;
// at 32 KiB a burst of 36-byte control frames coalesces ~900 deep, while
// bulk traffic goes zero-copy and never needs arena space beyond headers.
const arenaCap = 32 << 10

// zeroCopyMin is the smallest payload body (bytes) worth queueing as its own
// iovec instead of copying into the arena. Below this, the copy is cheaper
// than growing the writev vector and pinning the caller's buffer.
const zeroCopyMin = 2048

func newFrameWriter(conn net.Conn, stall func()) *frameWriter {
	return &frameWriter{conn: conn, stall: stall, arena: make([]byte, 0, arenaCap)}
}

// pending reports whether any frames are queued but not yet flushed.
func (w *frameWriter) pending() bool { return len(w.iov) > 0 }

// queuedBytes returns the total bytes currently queued.
func (w *frameWriter) queuedBytes() int {
	total := 0
	for _, b := range w.iov {
		total += len(b)
	}
	return total
}

// grabArena returns n bytes of arena space as the current iovec tail,
// flushing queued frames first if the arena is full. n must be ≤ arenaCap.
func (w *frameWriter) grabArena(n int) ([]byte, error) {
	if len(w.arena)+n > cap(w.arena) {
		if err := w.flush(); err != nil {
			return nil, err
		}
	}
	start := len(w.arena)
	w.arena = w.arena[:start+n]
	b := w.arena[start : start+n]
	if w.open {
		// Extend the open tail entry over the new region.
		last := len(w.iov) - 1
		w.iov[last] = w.iov[last][:len(w.iov[last])+n]
	} else {
		w.iov = append(w.iov, b)
		w.open = true
	}
	return b, nil
}

// addView queues a zero-copy iovec entry.
func (w *frameWriter) addView(b []byte) {
	w.iov = append(w.iov, b)
	w.open = false
}

// enqueue appends one frame to the pending batch. When owned is true the
// writer takes ownership of msg.Payload/msg.Indices and recycles them after
// the flush that ships their bytes; otherwise any zero-copy view into the
// caller's buffers must be flushed before enqueue's caller returns (the TCP
// mesh guarantees this by flushing non-owned sends with large payloads
// unconditionally).
func (w *frameWriter) enqueue(msg *Message, owned bool) error {
	if err := checkEncodable(msg); err != nil {
		if owned {
			PutPayload(msg.Payload)
			PutIndices(msg.Indices)
		}
		return err
	}
	n := len(msg.Payload)
	hdr, err := w.grabArena(frameHeaderBytes)
	if err != nil {
		if owned {
			PutPayload(msg.Payload)
			PutIndices(msg.Indices)
		}
		return err
	}
	putFrameHeader(hdr, msg, n)

	// Index list: tiny lists copy into the arena, big ones go zero-copy.
	if msg.Indices != nil && n > 0 {
		if wire := 4 * n; wire < zeroCopyMin && wire <= arenaCap-frameHeaderBytes {
			b, err := w.grabArena(wire)
			if err != nil {
				if owned {
					PutPayload(msg.Payload)
					PutIndices(msg.Indices)
				}
				return err
			}
			encodeIndices(b, msg.Indices)
			if owned {
				PutIndices(msg.Indices)
			}
		} else if view := i32Bytes(msg.Indices); view != nil {
			w.addView(view)
			if owned {
				w.ownedIndices = append(w.ownedIndices, msg.Indices)
			}
		} else {
			// Big-endian host: stage the converted bytes in pooled scratch.
			w.addView(w.stage(4*n, func(b []byte) { encodeIndices(b, msg.Indices) }))
			if owned {
				PutIndices(msg.Indices)
			}
		}
	} else if owned {
		PutIndices(msg.Indices)
	}

	// Payload.
	if n == 0 {
		if owned {
			PutPayload(msg.Payload)
		}
		return nil
	}
	wire := msg.Dtype.WireBytes(n)
	switch {
	case msg.Dtype == tensor.F64 && wire >= zeroCopyMin:
		if view := f64Bytes(msg.Payload); view != nil {
			w.addView(view)
			if owned {
				w.ownedPayloads = append(w.ownedPayloads, msg.Payload)
			}
			return nil
		}
		fallthrough
	default:
		// Quantized payloads always stage (Pack wants a contiguous
		// destination); small f64 payloads copy because it is cheaper than
		// pinning. Stage into the arena when the body fits, else into
		// pooled scratch.
		if wire <= arenaCap-len(w.arena) || wire <= arenaCap/2 {
			b, err := w.grabArena(wire)
			if err != nil {
				if owned {
					PutPayload(msg.Payload)
				}
				return err
			}
			encodePayload(b, msg.Dtype, msg.Payload)
		} else {
			w.addView(w.stage(wire, func(b []byte) { encodePayload(b, msg.Dtype, msg.Payload) }))
		}
		if owned {
			PutPayload(msg.Payload)
		}
		return nil
	}
}

// stage encodes n bytes into a pooled scratch buffer held until the next
// reset, and returns it.
func (w *frameWriter) stage(n int, fill func([]byte)) []byte {
	bp := encodeBufs.Get().(*[]byte)
	buf := (*bp)[:0]
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	fill(buf)
	*bp = buf
	w.scratch = append(w.scratch, bp)
	return buf
}

// flush writes every queued frame to the connection and releases owned
// buffers. writev (net.Buffers.WriteTo) ships the whole batch — arena
// regions and zero-copy payload views — in as few syscalls as the kernel
// allows. With a stall hook installed, the write runs under short deadlines
// and the hook is invoked on each expiry; the TCP mesh uses this to drain
// its own receive side while write-blocked, which breaks send-send cycles
// between mutually bulk-writing peers without a dedicated reader goroutine
// (net.Buffers consumes written entries, so each retry resumes exactly where
// the deadline cut the batch).
func (w *frameWriter) flush() error {
	var err error
	for len(w.iov) > 0 {
		if w.stall != nil {
			// Lazy deadline re-arm: adjusting the runtime poller timer
			// costs more than the writev itself on small flushes (~12% of
			// small-message CPU when done per flush), so the armed deadline
			// is left in place across flushes and only pushed out when the
			// runway drops below flushMinRunway. A write-blocked rank times
			// out within flushArm and then cycles write/drain on whatever
			// runway each re-arm grants.
			if now := time.Now(); w.armedUntil.Sub(now) < flushMinRunway {
				w.armedUntil = now.Add(flushArm)
				_ = w.conn.SetWriteDeadline(w.armedUntil)
			}
		}
		_, err = w.iov.WriteTo(w.conn)
		if err == nil {
			break
		}
		var ne net.Error
		if w.stall != nil && errors.As(err, &ne) && ne.Timeout() {
			w.stall()
			continue
		}
		break
	}
	w.reset()
	return err
}

// reset clears the queue and releases owned buffers. Called after a flush
// attempt: on error the connection is dead and the bytes will never ship, so
// the buffers are released either way.
func (w *frameWriter) reset() {
	for i := range w.iov {
		w.iov[i] = nil
	}
	w.iov = w.iov[:0]
	w.open = false
	w.arena = w.arena[:0]
	for _, p := range w.ownedPayloads {
		PutPayload(p)
	}
	w.ownedPayloads = w.ownedPayloads[:0]
	for _, ix := range w.ownedIndices {
		PutIndices(ix)
	}
	w.ownedIndices = w.ownedIndices[:0]
	for _, bp := range w.scratch {
		*bp = (*bp)[:0]
		encodeBufs.Put(bp)
	}
	w.scratch = w.scratch[:0]
}

// flushQuantum is how long a flush blocks on the socket before lending its
// thread to the receive side (see TCPMesh drainAssist). Long enough that an
// unblocked write never sees it; short enough that a write-blocked rank
// starts draining promptly.
const flushQuantum = 5 * time.Millisecond

// flushArm is how far out the write deadline is armed when it needs
// refreshing; many fast flushes then amortize one poller-timer update. It
// bounds the worst-case delay before a write-blocked rank notices the
// stall and starts drain-assisting.
const flushArm = 4 * flushQuantum

// flushMinRunway is the least deadline runway a write attempt may start
// with. Below it the deadline is pushed back out to flushArm; above it the
// existing deadline stands, so the common unblocked flush (microseconds)
// skips the poller-timer update entirely.
const flushMinRunway = time.Millisecond
