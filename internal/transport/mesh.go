package transport

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by operations on a closed mesh endpoint.
var ErrClosed = errors.New("transport: mesh closed")

// Mesh is one rank's view of a fully connected, reliable, ordered
// point-to-point network. Send never blocks indefinitely on a live peer;
// Recv blocks until a message from the named peer arrives or the endpoint
// closes.
type Mesh interface {
	// Rank returns this endpoint's rank.
	Rank() int
	// Size returns the number of ranks in the job.
	Size() int
	// Send delivers m to rank `to`. The message's From/To fields are
	// stamped by the implementation.
	Send(to int, m Message) error
	// Recv returns the next message sent by rank `from`, in send order.
	Recv(from int) (Message, error)
	// Close releases the endpoint; pending and future Recv calls fail
	// with ErrClosed.
	Close() error
}

// chanQueue is an unbounded FIFO delivering messages from one peer.
type chanQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

func newChanQueue() *chanQueue {
	q := &chanQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *chanQueue) push(m Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.queue = append(q.queue, m)
	q.cond.Signal()
	return nil
}

func (q *chanQueue) pop() (Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.queue) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.queue) == 0 {
		return Message{}, ErrClosed
	}
	m := q.queue[0]
	q.queue = q.queue[1:]
	return m, nil
}

func (q *chanQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// LocalNetwork is an in-memory mesh fabric for n ranks within one process.
// Endpoints returns one Mesh per rank; messages are delivered immediately
// and in order.
type LocalNetwork struct {
	size      int
	endpoints []*localMesh
}

// NewLocalNetwork builds an in-memory fabric for n ranks.
func NewLocalNetwork(n int) (*LocalNetwork, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: network of %d ranks", n)
	}
	net := &LocalNetwork{size: n}
	net.endpoints = make([]*localMesh, n)
	for i := 0; i < n; i++ {
		queues := make([]*chanQueue, n)
		for j := range queues {
			queues[j] = newChanQueue()
		}
		net.endpoints[i] = &localMesh{net: net, rank: i, inbox: queues}
	}
	return net, nil
}

// Endpoint returns rank i's Mesh.
func (n *LocalNetwork) Endpoint(i int) (Mesh, error) {
	if i < 0 || i >= n.size {
		return nil, fmt.Errorf("transport: rank %d of %d", i, n.size)
	}
	return n.endpoints[i], nil
}

// Endpoints returns all rank endpoints in rank order.
func (n *LocalNetwork) Endpoints() []Mesh {
	out := make([]Mesh, n.size)
	for i, ep := range n.endpoints {
		out[i] = ep
	}
	return out
}

// Close closes every endpoint.
func (n *LocalNetwork) Close() error {
	for _, ep := range n.endpoints {
		_ = ep.Close()
	}
	return nil
}

type localMesh struct {
	net  *LocalNetwork
	rank int
	// inbox[j] holds messages sent by rank j to this rank.
	inbox []*chanQueue

	mu     sync.Mutex
	closed bool
}

var _ Mesh = (*localMesh)(nil)

func (m *localMesh) Rank() int { return m.rank }

func (m *localMesh) Size() int { return m.net.size }

func (m *localMesh) Send(to int, msg Message) error {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if to < 0 || to >= m.net.size {
		return fmt.Errorf("transport: send to rank %d of %d", to, m.net.size)
	}
	msg.From = int32(m.rank)
	msg.To = int32(to)
	// Messages are immutable once sent: copy the payload so the sender
	// may keep mutating its buffers (the TCP mesh gets this for free by
	// serializing onto the wire).
	if msg.Payload != nil {
		p := make([]float64, len(msg.Payload))
		copy(p, msg.Payload)
		msg.Payload = p
	}
	return m.net.endpoints[to].inbox[m.rank].push(msg)
}

func (m *localMesh) Recv(from int) (Message, error) {
	if from < 0 || from >= m.net.size {
		return Message{}, fmt.Errorf("transport: recv from rank %d of %d", from, m.net.size)
	}
	return m.inbox[from].pop()
}

func (m *localMesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	for _, q := range m.inbox {
		q.close()
	}
	return nil
}
