package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// ErrClosed is returned by operations on a closed mesh endpoint.
var ErrClosed = errors.New("transport: mesh closed")

// Mesh is one rank's view of a fully connected, reliable, ordered
// point-to-point network. Send never blocks indefinitely on a live peer;
// Recv blocks until a message from the named peer arrives or the endpoint
// closes.
type Mesh interface {
	// Rank returns this endpoint's rank.
	Rank() int
	// Size returns the number of ranks in the job.
	Size() int
	// Send delivers m to rank `to`. The message's From/To fields are
	// stamped by the implementation.
	Send(to int, m Message) error
	// Recv returns the next message sent by rank `from`, in send order.
	Recv(from int) (Message, error)
	// Close releases the endpoint; pending and future Recv calls fail
	// with ErrClosed.
	Close() error
}

// OwnedSender is an optional Mesh capability: SendOwned transfers ownership
// of m.Payload to the transport. The caller must not touch the payload after
// the call (success or failure) — the in-memory mesh hands the very buffer to
// the receiver without copying, and the TCP mesh recycles it into the payload
// pool once it is on the wire. Payloads sent this way should come from
// GetPayload (or a prior Recv) so the eventual PutPayload finds a pool class.
type OwnedSender interface {
	SendOwned(to int, m Message) error
}

// SendOwned delivers m with ownership transfer when the mesh supports it,
// and otherwise falls back to a plain Send followed by releasing the payload
// on the caller's behalf. Either way the caller relinquishes m.Payload.
func SendOwned(m Mesh, to int, msg Message) error {
	if os, ok := m.(OwnedSender); ok {
		return os.SendOwned(to, msg)
	}
	err := m.Send(to, msg)
	PutPayload(msg.Payload)
	return err
}

// chanQueue is an unbounded FIFO delivering messages from one peer. It is a
// growable ring buffer: steady-state push/pop traffic recycles the same
// backing array instead of appending onto an ever-advancing slice front.
type chanQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []Message
	head   int // index of the oldest message
	count  int
	closed bool
	// notify carries a wake token after every push (and on close), so a
	// single consumer can select on message arrival alongside other events
	// (the stream demux selects on it against the pull semaphore). Tokens
	// are sticky, not counted: a consumer must re-check tryPop after every
	// wake and tolerate stale tokens.
	notify chan struct{}
}

func newChanQueue() *chanQueue {
	q := &chanQueue{notify: make(chan struct{}, 1)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// wake sets the notify token if it is not already pending.
func (q *chanQueue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// ready returns the wake channel: it yields a token after a push or close.
// Spurious and stale tokens are possible; pair every receipt with tryPop.
func (q *chanQueue) ready() <-chan struct{} { return q.notify }

func (q *chanQueue) push(m Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.count == len(q.buf) {
		grown := make([]Message, max(8, 2*len(q.buf)))
		for i := 0; i < q.count; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.count)%len(q.buf)] = m
	q.count++
	q.cond.Signal()
	q.wake()
	return nil
}

func (q *chanQueue) pop() (Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.count == 0 {
		return Message{}, ErrClosed
	}
	m := q.buf[q.head]
	q.buf[q.head] = Message{} // drop the payload reference
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return m, nil
}

// tryPop removes and returns the oldest message without blocking; ok is
// false when the queue is empty (closed or not).
func (q *chanQueue) tryPop() (Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return Message{}, false
	}
	m := q.buf[q.head]
	q.buf[q.head] = Message{} // drop the payload reference
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return m, true
}

func (q *chanQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
	q.wake()
}

// isClosed reports whether close was called. Messages pushed before the
// close may still be pending; pair with tryPop.
func (q *chanQueue) isClosed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// LocalNetwork is an in-memory mesh fabric for n ranks within one process.
// Endpoints returns one Mesh per rank; messages are delivered immediately
// and in order.
//
// Per-peer queues are created lazily on first use: a fully connected fabric
// has n² peer pairs, but real collectives touch only the pairs their
// schedules use (a ring touches 2n, a multi-level schedule O(n·log n)), so
// eager allocation would dominate memory at 1024 ranks (~3M queues) for
// structures that are never exercised.
type LocalNetwork struct {
	size      int
	endpoints []*localMesh
}

// NewLocalNetwork builds an in-memory fabric for n ranks.
func NewLocalNetwork(n int) (*LocalNetwork, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: network of %d ranks", n)
	}
	net := &LocalNetwork{size: n}
	net.endpoints = make([]*localMesh, n)
	for i := 0; i < n; i++ {
		net.endpoints[i] = &localMesh{net: net, rank: i, inbox: make([]atomic.Pointer[chanQueue], n)}
	}
	return net, nil
}

// Endpoint returns rank i's Mesh.
func (n *LocalNetwork) Endpoint(i int) (Mesh, error) {
	if i < 0 || i >= n.size {
		return nil, fmt.Errorf("transport: rank %d of %d", i, n.size)
	}
	return n.endpoints[i], nil
}

// Endpoints returns all rank endpoints in rank order.
func (n *LocalNetwork) Endpoints() []Mesh {
	out := make([]Mesh, n.size)
	for i, ep := range n.endpoints {
		out[i] = ep
	}
	return out
}

// Close closes every endpoint.
func (n *LocalNetwork) Close() error {
	for _, ep := range n.endpoints {
		_ = ep.Close()
	}
	return nil
}

type localMesh struct {
	net  *LocalNetwork
	rank int
	// inbox[j] holds messages sent by rank j to this rank; slots are
	// populated lazily by queueFrom on the first send or receive.
	inbox []atomic.Pointer[chanQueue]

	mu     sync.Mutex
	closed bool
}

var (
	_ Mesh        = (*localMesh)(nil)
	_ OwnedSender = (*localMesh)(nil)
)

func (m *localMesh) Rank() int { return m.rank }

func (m *localMesh) Size() int { return m.net.size }

// queueFrom returns this endpoint's inbox queue for peer `from`, creating it
// on first touch. A queue created concurrently with Close must come up
// already closed, so the winner of the CAS re-checks the closed flag under
// the endpoint lock (Close flips the flag under the same lock before it
// walks the slots).
func (m *localMesh) queueFrom(from int) *chanQueue {
	if q := m.inbox[from].Load(); q != nil {
		return q
	}
	q := newChanQueue()
	if m.inbox[from].CompareAndSwap(nil, q) {
		m.mu.Lock()
		closed := m.closed
		m.mu.Unlock()
		if closed {
			q.close()
		}
		return q
	}
	return m.inbox[from].Load()
}

func (m *localMesh) Send(to int, msg Message) error {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if to < 0 || to >= m.net.size {
		return fmt.Errorf("transport: send to rank %d of %d", to, m.net.size)
	}
	msg.From = int32(m.rank)
	msg.To = int32(to)
	// Messages are immutable once sent: copy the payload so the sender
	// may keep mutating its buffers (the TCP mesh gets this for free by
	// serializing onto the wire). The copy lands in a pooled buffer the
	// receiver owns — see the ownership contract in pool.go.
	if msg.Payload != nil {
		p := GetPayload(len(msg.Payload))
		copy(p, msg.Payload)
		msg.Payload = p
		// A lossy wire dtype quantizes on the real wire; replay the exact
		// quantize→dequantize round trip on the copy so in-memory results
		// are bit-identical to the TCP path. RoundTrip is pinned (by test)
		// to equal Unpack∘Pack.
		tensor.RoundTrip(msg.Dtype, p)
	}
	if msg.Indices != nil {
		// Sparse index lists cross the real wire by value too; the copy
		// lands in a pooled slice matching the wire decoder's behavior.
		ix := GetIndices(len(msg.Indices))
		copy(ix, msg.Indices)
		msg.Indices = ix
	}
	return m.net.endpoints[to].queueFrom(m.rank).push(msg)
}

// SendOwned implements OwnedSender: the sender's buffer is delivered to the
// receiver as-is, skipping the defensive copy Send performs. The ring
// AllReduce forwards chunks through the ring this way, so one buffer rotates
// all the way around instead of being copied at every hop.
func (m *localMesh) SendOwned(to int, msg Message) error {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		PutPayload(msg.Payload)
		return ErrClosed
	}
	if to < 0 || to >= m.net.size {
		PutPayload(msg.Payload)
		return fmt.Errorf("transport: send to rank %d of %d", to, m.net.size)
	}
	msg.From = int32(m.rank)
	msg.To = int32(to)
	// The buffer is ours now — quantize in place to mirror the wire (see
	// Send). Forwarded buffers already hold dequantized grid values, for
	// which the round trip is an exact no-op by idempotence. Ownership of
	// msg.Indices transfers with the message as well: the sender must not
	// touch the slice afterwards.
	tensor.RoundTrip(msg.Dtype, msg.Payload)
	if err := m.net.endpoints[to].queueFrom(m.rank).push(msg); err != nil {
		PutPayload(msg.Payload)
		return err
	}
	return nil
}

func (m *localMesh) Recv(from int) (Message, error) {
	if from < 0 || from >= m.net.size {
		return Message{}, fmt.Errorf("transport: recv from rank %d of %d", from, m.net.size)
	}
	return m.queueFrom(from).pop()
}

func (m *localMesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	for i := range m.inbox {
		if q := m.inbox[i].Load(); q != nil {
			q.close()
		}
	}
	return nil
}
