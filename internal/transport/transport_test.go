package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: MsgChunk, From: 1, To: 2, Iter: 42, Chunk: 3, Payload: []float64{1.5, -2.25, 0}},
		{Type: MsgBroadcast, From: 0, To: 7, Iter: -1, Chunk: 0, Payload: nil},
		{Type: MsgControl, From: 100, To: 0, Iter: 1 << 40, Chunk: -1, Payload: []float64{math.Pi}},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got.Type != want.Type || got.From != want.From || got.To != want.To ||
			got.Iter != want.Iter || got.Chunk != want.Chunk {
			t.Errorf("msg %d header = %+v, want %+v", i, got, want)
		}
		if len(got.Payload) != len(want.Payload) {
			t.Fatalf("msg %d payload len = %d, want %d", i, len(got.Payload), len(want.Payload))
		}
		for j := range want.Payload {
			if got.Payload[j] != want.Payload[j] {
				t.Errorf("msg %d payload[%d] = %v, want %v", i, j, got.Payload[j], want.Payload[j])
			}
		}
	}
	if _, err := ReadMessage(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("read past end = %v, want EOF", err)
	}
}

func TestEncodeAppends(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	buf, err := Encode(prefix, Message{Type: MsgControl})
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAA || buf[1] != 0xBB {
		t.Error("Encode clobbered existing bytes")
	}
	got, err := ReadMessage(bytes.NewReader(buf[2:]))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgControl {
		t.Errorf("decoded type = %v", got.Type)
	}
}

func TestReadMessageTruncated(t *testing.T) {
	buf, err := Encode(nil, Message{Type: MsgChunk, Payload: []float64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Truncated header.
	if _, err := ReadMessage(bytes.NewReader(buf[:5])); err == nil {
		t.Error("truncated header should error")
	}
	// Truncated payload.
	if _, err := ReadMessage(bytes.NewReader(buf[:len(buf)-4])); err == nil {
		t.Error("truncated payload should error")
	}
}

func TestReadMessageHugePayloadRejected(t *testing.T) {
	buf, err := Encode(nil, Message{Type: MsgChunk})
	if err != nil {
		t.Fatal(err)
	}
	// Forge a giant payload length (v1 nelems field at offset 32).
	buf[32], buf[33], buf[34], buf[35] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := ReadMessage(bytes.NewReader(buf)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("forged length error = %v, want ErrPayloadTooLarge", err)
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(typ uint8, from, to int32, iter int64, chunk int32, payload []float64) bool {
		m := Message{
			Type: MsgType(typ%3 + 1), From: from, To: to,
			Iter: iter, Chunk: chunk, Payload: payload,
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		if got.Type != m.Type || got.From != m.From || got.To != m.To ||
			got.Iter != m.Iter || got.Chunk != m.Chunk || len(got.Payload) != len(m.Payload) {
			return false
		}
		for i := range m.Payload {
			a, b := got.Payload[i], m.Payload[i]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func testMeshBasics(t *testing.T, meshes []Mesh) {
	t.Helper()
	n := len(meshes)
	// Every rank sends a tagged message to every other rank.
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				err := meshes[i].Send(j, Message{
					Type:    MsgChunk,
					Iter:    int64(i*100 + j),
					Payload: []float64{float64(i), float64(j)},
				})
				if err != nil {
					t.Errorf("send %d->%d: %v", i, j, err)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				m, err := meshes[i].Recv(j)
				if err != nil {
					t.Errorf("recv %d<-%d: %v", i, j, err)
					return
				}
				if int(m.From) != j || int(m.To) != i {
					t.Errorf("rank %d got From=%d To=%d, want From=%d To=%d", i, m.From, m.To, j, i)
				}
				if m.Iter != int64(j*100+i) {
					t.Errorf("rank %d from %d: iter %d, want %d", i, j, m.Iter, j*100+i)
				}
			}
		}()
	}
	wg.Wait()
}

func testMeshOrdering(t *testing.T, a, b Mesh) {
	t.Helper()
	const n = 200
	for k := 0; k < n; k++ {
		if err := a.Send(b.Rank(), Message{Type: MsgControl, Iter: int64(k)}); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < n; k++ {
		m, err := b.Recv(a.Rank())
		if err != nil {
			t.Fatal(err)
		}
		if m.Iter != int64(k) {
			t.Fatalf("ordering violated: got iter %d at position %d", m.Iter, k)
		}
	}
}

func TestLocalNetwork(t *testing.T) {
	net, err := NewLocalNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	meshes := net.Endpoints()
	if len(meshes) != 4 {
		t.Fatalf("endpoints = %d", len(meshes))
	}
	if meshes[2].Rank() != 2 || meshes[2].Size() != 4 {
		t.Errorf("rank/size = %d/%d", meshes[2].Rank(), meshes[2].Size())
	}
	testMeshBasics(t, meshes)
	testMeshOrdering(t, meshes[0], meshes[3])
}

func TestLocalNetworkInvalid(t *testing.T) {
	if _, err := NewLocalNetwork(0); err == nil {
		t.Error("NewLocalNetwork(0) should error")
	}
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	if _, err := net.Endpoint(5); err == nil {
		t.Error("out-of-range Endpoint should error")
	}
	ep, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(9, Message{}); err == nil {
		t.Error("send to bad rank should error")
	}
	if _, err := ep.Recv(-1); err == nil {
		t.Error("recv from bad rank should error")
	}
}

func TestLocalMeshClose(t *testing.T) {
	net, err := NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)

	done := make(chan error, 1)
	go func() {
		_, err := ep1.Recv(0)
		done <- err
	}()
	if err := ep1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Errorf("recv on closed mesh = %v, want ErrClosed", err)
	}
	if err := ep1.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
	if err := ep0.Send(1, Message{}); !errors.Is(err, ErrClosed) {
		t.Errorf("send to closed peer = %v, want ErrClosed", err)
	}
	_ = net.Close()
}

func TestTCPCluster(t *testing.T) {
	meshes, err := NewTCPCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	asMesh := make([]Mesh, len(meshes))
	for i, m := range meshes {
		asMesh[i] = m
	}
	testMeshBasics(t, asMesh)
	testMeshOrdering(t, meshes[1], meshes[2])
}

func TestTCPSelfSend(t *testing.T) {
	meshes, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	if err := meshes[0].Send(0, Message{Type: MsgControl, Iter: 7}); err != nil {
		t.Fatal(err)
	}
	m, err := meshes[0].Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Iter != 7 {
		t.Errorf("self-send iter = %d", m.Iter)
	}
}

// TestRingBulkSendBeforeRecv pins the transport against the mutual-bulk
// deadlock: every rank sends one frame far larger than the kernel socket
// buffers to its right neighbor BEFORE posting its receive, so no consumer
// read ever drains the sockets and progress depends entirely on the
// write-stall drain. The drain must both actually read the socket (a probe
// under an expired deadline silently reads nothing) and checkpoint
// mid-frame (blocking for a frame tail forms a circular wait around the
// ring); regressions in either deadlock this test.
func TestRingBulkSendBeforeRecv(t *testing.T) {
	const (
		n   = 4
		dim = 2 << 20 // 16 MiB of f64 per frame, >> socket buffering
	)
	meshes, err := NewTCPCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	done := make(chan error, n)
	for _, m := range meshes {
		m := m
		go func() {
			payload := make([]float64, dim)
			for i := range payload {
				payload[i] = float64(m.Rank()*dim + i)
			}
			if err := m.Send((m.Rank()+1)%n, Message{Type: MsgReduce, Iter: 1, Payload: payload}); err != nil {
				done <- err
				return
			}
			left := (m.Rank() + n - 1) % n
			got, err := m.Recv(left)
			if err != nil {
				done <- err
				return
			}
			if len(got.Payload) != dim {
				done <- fmt.Errorf("rank %d: got %d elems, want %d", m.Rank(), len(got.Payload), dim)
				return
			}
			for _, i := range []int{0, 1, dim / 2, dim - 1} {
				if want := float64(left*dim + i); got.Payload[i] != want {
					done <- fmt.Errorf("rank %d: payload[%d] = %v, want %v", m.Rank(), i, got.Payload[i], want)
					return
				}
			}
			done <- nil
		}()
	}
	timeout := time.After(60 * time.Second)
	for range meshes {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-timeout:
			t.Fatal("deadlock: ranks still blocked after 60s (write-stall drain not making progress)")
		}
	}
}

// TestLinkRatePacing: with an emulated link rate, a burst of messages takes
// at least its serialization time, and the payloads still arrive intact and
// in order.
func TestLinkRatePacing(t *testing.T) {
	meshes, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	const rate = 16e6 // 16 MB/s emulated link
	for _, m := range meshes {
		m.SetLinkRate(rate)
	}
	payload := make([]float64, 32*1024) // 256 KiB on an f64 wire
	for i := range payload {
		payload[i] = float64(i)
	}
	const msgs = 4
	start := time.Now()
	go func() {
		for k := 0; k < msgs; k++ {
			if err := meshes[0].Send(1, Message{Type: MsgChunk, Iter: int64(k), Payload: payload}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for k := 0; k < msgs; k++ {
		got, err := meshes[1].Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Iter != int64(k) || len(got.Payload) != len(payload) || got.Payload[777] != 777 {
			t.Fatalf("message %d corrupted: iter %d len %d", k, got.Iter, len(got.Payload))
		}
		PutPayload(got.Payload)
	}
	// 4 × 256 KiB at 16 MB/s is 64 ms of serialization; allow generous slack
	// below it so scheduler jitter can't flake the test, but unpaced
	// loopback (sub-millisecond) stays clearly excluded.
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("paced burst finished in %v, want >= 40ms of serialization delay", elapsed)
	}
}

func TestTCPClose(t *testing.T) {
	meshes, err := NewTCPCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := meshes[0].Recv(1)
		done <- err
	}()
	if err := meshes[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Errorf("recv after close = %v, want ErrClosed", err)
	}
	if err := meshes[0].Send(1, Message{}); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close = %v, want ErrClosed", err)
	}
	if err := meshes[0].Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
	for _, m := range meshes[1:] {
		_ = m.Close()
	}
}

func TestTCPClusterInvalid(t *testing.T) {
	if _, err := NewTCPCluster(0); err == nil {
		t.Error("NewTCPCluster(0) should error")
	}
}

func TestTCPLargePayload(t *testing.T) {
	meshes, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	payload := make([]float64, 100_000)
	for i := range payload {
		payload[i] = float64(i) * 0.25
	}
	go func() {
		_ = meshes[0].Send(1, Message{Type: MsgBroadcast, Payload: payload})
	}()
	m, err := meshes[1].Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Payload) != len(payload) {
		t.Fatalf("payload len = %d", len(m.Payload))
	}
	for i := 0; i < len(payload); i += 9973 {
		if m.Payload[i] != payload[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, m.Payload[i], payload[i])
		}
	}
}

func TestSubMesh(t *testing.T) {
	net, err := NewLocalNetwork(5)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	// Group {1,3,4}; rank 3's view.
	parent, err := net.Endpoint(3)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewSubMesh(parent, []int{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Rank() != 1 || sub.Size() != 3 {
		t.Errorf("rank/size = %d/%d, want 1/3", sub.Rank(), sub.Size())
	}
	if sub.Parent() != parent {
		t.Error("Parent mismatch")
	}
	g, err := sub.GlobalRank(2)
	if err != nil || g != 4 {
		t.Errorf("GlobalRank(2) = (%d,%v)", g, err)
	}
	if _, err := sub.GlobalRank(3); err == nil {
		t.Error("out-of-range local rank should error")
	}

	// Send local 0 (= global 1) a message; verify it arrives at global 1
	// stamped with global From/To.
	if err := sub.Send(0, Message{Type: MsgControl, Iter: 9}); err != nil {
		t.Fatal(err)
	}
	ep1, err := net.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := ep1.Recv(3)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Iter != 9 || msg.From != 3 || msg.To != 1 {
		t.Errorf("msg = %+v", msg)
	}

	// Recv through the submesh translates peer indices.
	if err := ep1.Send(3, Message{Type: MsgControl, Iter: 11}); err != nil {
		t.Fatal(err)
	}
	got, err := sub.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter != 11 {
		t.Errorf("sub recv iter = %d", got.Iter)
	}
	if err := sub.Send(7, Message{}); err == nil {
		t.Error("send to bad local rank should error")
	}
	if _, err := sub.Recv(-1); err == nil {
		t.Error("recv from bad local rank should error")
	}
}

func TestSubMeshValidation(t *testing.T) {
	net, err := NewLocalNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	parent, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSubMesh(parent, nil); err == nil {
		t.Error("empty members should error")
	}
	if _, err := NewSubMesh(parent, []int{0, 5}); err == nil {
		t.Error("out-of-range member should error")
	}
	if _, err := NewSubMesh(parent, []int{0, 0}); err == nil {
		t.Error("duplicate member should error")
	}
	if _, err := NewSubMesh(parent, []int{1, 2}); err == nil {
		t.Error("subset excluding own rank should error")
	}
}

func TestSubMeshCollective(t *testing.T) {
	// A ring allreduce confined to a 3-member subgroup of a 5-rank mesh.
	net, err := NewLocalNetwork(5)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	members := []int{0, 2, 4}
	var wg sync.WaitGroup
	sums := make([]float64, 5)
	errs := make([]error, 5)
	for _, g := range members {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			parent, err := net.Endpoint(g)
			if err != nil {
				errs[g] = err
				return
			}
			sub, err := NewSubMesh(parent, members)
			if err != nil {
				errs[g] = err
				return
			}
			// Poor man's allreduce over the submesh: everyone sends
			// its value to local 0, which totals and broadcasts back.
			v := float64(g + 1)
			if sub.Rank() == 0 {
				total := v
				for p := 1; p < sub.Size(); p++ {
					m, err := sub.Recv(p)
					if err != nil {
						errs[g] = err
						return
					}
					total += m.Payload[0]
				}
				for p := 1; p < sub.Size(); p++ {
					if err := sub.Send(p, Message{Type: MsgControl, Payload: []float64{total}}); err != nil {
						errs[g] = err
						return
					}
				}
				sums[g] = total
			} else {
				if err := sub.Send(0, Message{Type: MsgControl, Payload: []float64{v}}); err != nil {
					errs[g] = err
					return
				}
				m, err := sub.Recv(0)
				if err != nil {
					errs[g] = err
					return
				}
				sums[g] = m.Payload[0]
			}
		}()
	}
	wg.Wait()
	for _, g := range members {
		if errs[g] != nil {
			t.Fatalf("rank %d: %v", g, errs[g])
		}
		if sums[g] != 9 { // 1+3+5
			t.Errorf("rank %d sum = %v, want 9", g, sums[g])
		}
	}
}
