// Package transport provides reliable, ordered point-to-point messaging
// between the ranks of a training job. Two implementations are provided: an
// in-memory mesh (goroutines + channels) for single-process clusters and a
// TCP mesh (net) for multi-process deployments. Both satisfy the Mesh
// interface consumed by the collective layer.
//
// On the wire every message travels as a frame of the explicit, versioned
// frame protocol v1 (see frame.go for the writer and the layout rationale):
//
//	offset  size  field
//	     0     4  frame length (bytes after this field)
//	     4     1  protocol version (1)
//	     5     1  message type
//	     6     1  flags (bit0 sparse, bit1 compressed; others reserved)
//	     7     1  payload dtype
//	     8     4  stream id
//	    12     4  sender rank
//	    16     4  receiver rank
//	    20     8  iteration tag
//	    28     4  chunk tag
//	    32     4  payload element count
//	    36     …  indices (4·n bytes, present iff sparse flag) then payload
//	              (Dtype.WireBytes(n) bytes)
//
// All fields are little-endian. The length prefix lets a receiver (or a
// fuzzer) bound a frame before trusting any of its fields; the version byte
// makes the format evolvable; the flags must agree with the dtype and the
// length prefix or the frame is rejected — a frame can no longer express the
// index/value mismatches the pre-v1 format had to check for. The stream id
// moves tag-stream multiplexing into the transport: StreamDemux routes on
// this field instead of packing stream bits into Iter's high bits, so the
// full int64 iteration space belongs to the collective again.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/tensor"
)

// MsgType distinguishes the wire messages of the collective protocols.
type MsgType uint8

// Message kinds. Start at 1 so the zero value is invalid.
const (
	// MsgChunk carries a gradient chunk during reduce-scatter/allgather.
	MsgChunk MsgType = iota + 1
	// MsgBroadcast carries a full tensor during a broadcast.
	MsgBroadcast
	// MsgControl carries small control payloads (activations, acks).
	MsgControl
	// MsgReduce carries partial sums during tree and halving-doubling
	// reductions (fold-in, recursive-halving and reduce-to-root traffic).
	MsgReduce
	// MsgPSPush carries one chunk of a parameter-server push request: the
	// payload is the pushed values, the chunk tag packs the update mode
	// and chunk index (see internal/ps). Answered by an empty MsgPSAck.
	MsgPSPush
	// MsgPSPull carries a parameter-server pull request for one chunk
	// (empty payload). Answered by a MsgPSAck holding the chunk's values.
	MsgPSPull
	// MsgPSPushPull carries one chunk of a combined push+pull request;
	// the MsgPSAck returns the chunk's post-update values.
	MsgPSPushPull
	// MsgPSAck answers a parameter-server request: the iteration tag
	// carries the chunk's new version and the chunk tag echoes the
	// request's. Acks to pull-class requests carry the chunk values.
	MsgPSAck

	// maxMsgType bounds the valid type range for the frame decoder.
	maxMsgType = MsgPSAck
)

// IsPS reports whether t belongs to the parameter-server frame family —
// the types a peer must advertise CapPS to decode.
func (t MsgType) IsPS() bool { return t >= MsgPSPush && t <= MsgPSAck }

// Message is the unit of exchange on a Mesh.
type Message struct {
	// Type is the message kind.
	Type MsgType
	// From is the sender's rank.
	From int32
	// To is the receiver's rank.
	To int32
	// Stream is the logical tag stream the message belongs to (see
	// stream.go). Zero — the default — is the stream plain Recv observes, so
	// senders that never multiplex interoperate unchanged. The id travels in
	// the frame header, so transports route concurrent collectives without
	// touching the iteration tag.
	Stream int32
	// Iter tags the training iteration the message belongs to, so
	// cross-iteration traffic cannot be confused. The full int64 range is
	// usable: stream multiplexing no longer borrows its high bits.
	Iter int64
	// Chunk is the ring chunk index for MsgChunk traffic.
	Chunk int32
	// Dtype is the payload's wire encoding. The zero value (tensor.F64)
	// ships raw float64 bits; lossy dtypes quantize the payload on encode
	// and the receiver observes the dequantized values. The in-memory mesh
	// simulates the same quantize→dequantize round trip so in-process and
	// TCP results are bit-identical.
	Dtype tensor.Dtype
	// Payload carries tensor data (always float64 in memory; Dtype only
	// governs the wire representation).
	Payload []float64
	// Indices, when non-nil, marks the message as SPARSE: Payload[i] is the
	// value of dense element Indices[i]. Top-k gradient exchange ships
	// (index, value) pairs this way. A sparse message must satisfy
	// len(Indices) == len(Payload); the index values themselves are opaque
	// to the transport (the collective validates range and ordering).
	Indices []int32
}

// Frame protocol constants.
const (
	// ProtocolV1 is the current (and oldest supported) frame protocol
	// version. Every frame carries the negotiated version in its header.
	ProtocolV1 = 1

	// frameHeaderBytes is the full fixed header: the 4-byte length prefix
	// plus 32 bytes of framing fields.
	frameHeaderBytes = 36

	// frameLenBase is the value of the length prefix for an empty frame:
	// the header bytes that follow the prefix itself.
	frameLenBase = frameHeaderBytes - 4
)

// Frame flag bits. Flags are redundant with other header fields by design
// (sparse ⇔ indices present, compressed ⇔ dtype ≠ F64); the decoder rejects
// any disagreement, so a corrupt header cannot smuggle one contradictory
// claim past a check on the other.
const (
	// FlagSparse marks an index+value frame: 4·n index bytes precede the
	// payload.
	FlagSparse uint8 = 1 << 0
	// FlagCompressed marks a payload whose wire dtype is narrower than f64.
	FlagCompressed uint8 = 1 << 1

	// flagsKnown is the set of assigned flag bits; anything else is a
	// frame from the future (or garbage) and is rejected.
	flagsKnown = FlagSparse | FlagCompressed
)

// MaxPayloadElems bounds a single message's payload to guard decoders
// against corrupt or hostile length prefixes (128 MiB of float64s).
const MaxPayloadElems = 16 << 20

// maxFrameLen is the largest length prefix a conforming frame can carry:
// a full sparse f64 payload plus the header remainder.
const maxFrameLen = frameLenBase + MaxPayloadElems*(4+8)

// ErrPayloadTooLarge is returned when encoding or decoding a message whose
// payload exceeds MaxPayloadElems.
var ErrPayloadTooLarge = errors.New("transport: payload too large")

// ErrUnknownDtype is returned when encoding or decoding a message whose
// dtype byte is not a known wire encoding.
var ErrUnknownDtype = errors.New("transport: unknown payload dtype")

// ErrSparseMismatch is returned when encoding a sparse message whose index
// count does not match its payload length. (The v1 frame format cannot
// express the mismatch — sparse frames carry exactly one index per element —
// so the decoder never needs it.)
var ErrSparseMismatch = errors.New("transport: sparse index/value length mismatch")

// ErrBadFrame is returned when a frame header is self-contradictory: a
// length prefix that disagrees with the element count and flags, a flag bit
// that disagrees with the dtype, an unknown type or flag, or a negative
// stream id.
var ErrBadFrame = errors.New("transport: malformed frame header")

// frameBodyBytes returns the byte count of a frame's body (indices +
// payload) for n payload elements.
func frameBodyBytes(d tensor.Dtype, n int, sparse bool) int {
	body := d.WireBytes(n)
	if sparse {
		body += 4 * n
	}
	return body
}

// FrameBytes returns the full v1 frame size of a dense f64 message with n
// payload elements — the number benchmark and capacity math needs without
// encoding anything.
func FrameBytes(n int) int {
	return frameHeaderBytes + frameBodyBytes(tensor.F64, n, false)
}

// frameFlags derives the v1 flag byte for a message.
func frameFlags(m *Message) uint8 {
	var f uint8
	if m.Indices != nil {
		f |= FlagSparse
	}
	if m.Dtype != tensor.F64 {
		f |= FlagCompressed
	}
	return f
}

// checkEncodable validates the encoder-side invariants shared by Encode and
// the frame writer.
func checkEncodable(m *Message) error {
	if len(m.Payload) > MaxPayloadElems {
		return fmt.Errorf("%w: %d elems", ErrPayloadTooLarge, len(m.Payload))
	}
	if !m.Dtype.Valid() {
		return fmt.Errorf("%w: %d", ErrUnknownDtype, m.Dtype)
	}
	if m.Indices != nil && len(m.Indices) != len(m.Payload) {
		return fmt.Errorf("%w: %d indices, %d values", ErrSparseMismatch, len(m.Indices), len(m.Payload))
	}
	if m.Type == 0 || m.Type > maxMsgType {
		return fmt.Errorf("%w: type %d", ErrBadFrame, m.Type)
	}
	if m.Stream < 0 {
		return fmt.Errorf("%w: negative stream %d", ErrBadFrame, m.Stream)
	}
	return nil
}

// putFrameHeader writes the fixed v1 header into b (len(b) must be at least
// frameHeaderBytes) for a message with n payload elements.
func putFrameHeader(b []byte, m *Message, n int) {
	binary.LittleEndian.PutUint32(b[0:], uint32(frameLenBase+frameBodyBytes(m.Dtype, n, m.Indices != nil)))
	b[4] = ProtocolV1
	b[5] = byte(m.Type)
	b[6] = frameFlags(m)
	b[7] = byte(m.Dtype)
	binary.LittleEndian.PutUint32(b[8:], uint32(m.Stream))
	binary.LittleEndian.PutUint32(b[12:], uint32(m.From))
	binary.LittleEndian.PutUint32(b[16:], uint32(m.To))
	binary.LittleEndian.PutUint64(b[20:], uint64(m.Iter))
	binary.LittleEndian.PutUint32(b[28:], uint32(m.Chunk))
	binary.LittleEndian.PutUint32(b[32:], uint32(n))
}

// parseFrameHeader validates a fixed header and returns the decoded message
// shell (no body) plus the element count.
func parseFrameHeader(hdr []byte) (Message, int, error) {
	frameLen := binary.LittleEndian.Uint32(hdr[0:])
	if hdr[4] != ProtocolV1 {
		return Message{}, 0, fmt.Errorf("%w: frame version %d, speaking v%d", ErrVersionMismatch, hdr[4], ProtocolV1)
	}
	m := Message{
		Type:   MsgType(hdr[5]),
		Dtype:  tensor.Dtype(hdr[7]),
		Stream: int32(binary.LittleEndian.Uint32(hdr[8:])),
		From:   int32(binary.LittleEndian.Uint32(hdr[12:])),
		To:     int32(binary.LittleEndian.Uint32(hdr[16:])),
		Iter:   int64(binary.LittleEndian.Uint64(hdr[20:])),
		Chunk:  int32(binary.LittleEndian.Uint32(hdr[28:])),
	}
	flags := hdr[6]
	if m.Type == 0 || m.Type > maxMsgType {
		return Message{}, 0, fmt.Errorf("%w: type %d", ErrBadFrame, m.Type)
	}
	if flags&^flagsKnown != 0 {
		return Message{}, 0, fmt.Errorf("%w: unknown flags %#02x", ErrBadFrame, flags)
	}
	if !m.Dtype.Valid() {
		return Message{}, 0, fmt.Errorf("%w: %d", ErrUnknownDtype, hdr[7])
	}
	if compressed := m.Dtype != tensor.F64; compressed != (flags&FlagCompressed != 0) {
		return Message{}, 0, fmt.Errorf("%w: dtype %v vs compressed flag %t", ErrBadFrame, m.Dtype, !compressed)
	}
	if m.Stream < 0 {
		return Message{}, 0, fmt.Errorf("%w: negative stream %d", ErrBadFrame, m.Stream)
	}
	n := binary.LittleEndian.Uint32(hdr[32:])
	if n > MaxPayloadElems {
		return Message{}, 0, fmt.Errorf("%w: %d elems", ErrPayloadTooLarge, n)
	}
	sparse := flags&FlagSparse != 0
	if want := uint32(frameLenBase + frameBodyBytes(m.Dtype, int(n), sparse)); frameLen != want {
		return Message{}, 0, fmt.Errorf("%w: frame len %d, header implies %d", ErrBadFrame, frameLen, want)
	}
	if sparse {
		// Mark the shell sparse; the caller materializes the slice.
		m.Indices = emptyIndices
	}
	return m, int(n), nil
}

// emptyIndices is the non-nil zero-length marker a sparse frame shell
// carries before its index list is materialized (and after, when n == 0).
var emptyIndices = make([]int32, 0)

// Encode appends the v1 wire frame of m to buf and returns the extended
// slice. The hot transport path uses the vectored frame writer instead (see
// frame.go); Encode is the reference serializer shared by tests, fuzzers and
// loopback-free callers.
func Encode(buf []byte, m Message) ([]byte, error) {
	if err := checkEncodable(&m); err != nil {
		return nil, err
	}
	n := len(m.Payload)
	need := frameHeaderBytes + frameBodyBytes(m.Dtype, n, m.Indices != nil)
	off := len(buf)
	if cap(buf)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:off+need]
	b := buf[off:]
	putFrameHeader(b, &m, n)
	p := b[frameHeaderBytes:]
	if m.Indices != nil {
		encodeIndices(p, m.Indices)
		p = p[4*n:]
	}
	if n > 0 {
		encodePayload(p, m.Dtype, m.Payload)
	}
	return buf, nil
}

// encodeBufs recycles wire-format scratch buffers across sends; readBufs
// recycles the staging buffer quantized (non-f64) payloads decode through.
var encodeBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}
var readBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// WriteMessage writes one encoded frame to w, staging the wire bytes in a
// pooled scratch buffer so the encode allocates nothing steady-state.
func WriteMessage(w io.Writer, m Message) error {
	bp := encodeBufs.Get().(*[]byte)
	buf, err := Encode((*bp)[:0], m)
	if err != nil {
		encodeBufs.Put(bp)
		return err
	}
	_, err = w.Write(buf)
	*bp = buf[:0]
	encodeBufs.Put(bp)
	return err
}

// ReadMessage reads one v1 frame from r. It returns io.EOF unchanged on a
// clean end-of-stream before any header byte. When r is a *bufio.Reader the
// decode is zero-copy: f64 payloads and index lists are decoded straight
// from the peek window into pooled buffers, with no raw staging copy. Any
// other reader gets the exact-read path, which consumes precisely one
// frame's bytes and not one more — callers may keep using r for whatever
// follows the frame.
func ReadMessage(r io.Reader) (Message, error) {
	if br, ok := r.(*bufio.Reader); ok {
		return readFrame(br)
	}
	return readFrameExact(r)
}

// readFrameExact decodes one frame reading exactly its bytes from r: the
// fixed header, then the body staged through a pooled buffer. This is the
// reference decode path for non-buffered readers; the TCP hot path uses
// readFrame's peek-window decode instead.
func readFrameExact(r io.Reader) (Message, error) {
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) && err != io.ErrUnexpectedEOF {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("transport: read frame header: %w", err)
	}
	m, n, err := parseFrameHeader(hdr[:])
	if err != nil {
		return Message{}, err
	}
	body := frameBodyBytes(m.Dtype, n, m.Indices != nil)
	bp := readBufs.Get().(*[]byte)
	raw := *bp
	if cap(raw) < body {
		raw = make([]byte, body)
	}
	raw = raw[:body]
	*bp = raw[:0]
	defer readBufs.Put(bp)
	if _, err := io.ReadFull(r, raw); err != nil {
		return Message{}, fmt.Errorf("transport: read frame body: %w", err)
	}
	rest := raw
	if m.Indices != nil && n > 0 {
		idx := GetIndices(n)
		for i := range idx {
			idx[i] = int32(binary.LittleEndian.Uint32(rest[4*i:]))
		}
		m.Indices = idx
		rest = rest[4*n:]
	}
	if n > 0 {
		payload := GetPayload(n)
		if m.Dtype == tensor.F64 {
			if view := f64Bytes(payload); view != nil {
				copy(view, rest)
			} else {
				for i := range payload {
					payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
				}
			}
		} else {
			tensor.Unpack(m.Dtype, payload, rest)
		}
		m.Payload = payload
	}
	return m, nil
}

// readFrame decodes one frame from br. See ReadMessage for the contract.
func readFrame(br *bufio.Reader) (Message, error) {
	var d frameDecoder
	msg, _, err := d.step(br)
	if err != nil {
		d.abort()
		return Message{}, err
	}
	return msg, nil
}

// frameDecoder incrementally decodes v1 frames, retaining progress across
// calls. The TCP mesh keeps one per connection so a decode that times out
// mid-frame — the write-stall drain reads under a short deadline — resumes
// exactly where the bytes ran out instead of abandoning the frame. Every
// stage is restartable: a partial header stays buffered in the bufio
// window, and the index/payload fills record how many whole elements have
// landed in their pooled destination buffers.
//
// Only one reader may touch a decoder at a time (the mesh's per-connection
// read election guarantees that). After a non-timeout error the stream is
// unframed garbage; call abort to release partial buffers and tear the
// connection down.
type frameDecoder struct {
	active bool    // header parsed; msg/n describe the frame in progress
	msg    Message // header fields; Indices/Payload filled as bytes arrive
	n      int     // payload elements expected
	idxOff int     // index elements decoded so far
	payOff int     // f64 payload elements decoded so far
	rawOff int     // staged bytes read so far (quantized payloads)
	rawBox *[]byte // pooled staging buffer for quantized payloads
}

// step advances the decode as far as br can supply bytes. It returns
// (msg, true, nil) with a complete frame, or an error: a net.Error timeout
// means the source ran dry mid-frame and step may be called again once more
// bytes arrive; anything else is fatal to the stream. io.EOF is returned
// unchanged only on a clean end-of-stream before any frame byte.
func (d *frameDecoder) step(br *bufio.Reader) (Message, bool, error) {
	if !d.active {
		// Peek instead of ReadFull: the header is parsed in place in the
		// bufio window, so the hot path allocates nothing (a stack header
		// buffer would escape through the io.Reader interface).
		hdr, err := br.Peek(frameHeaderBytes)
		if err != nil {
			if errors.Is(err, io.EOF) {
				if len(hdr) == 0 {
					return Message{}, false, io.EOF
				}
				err = io.ErrUnexpectedEOF
			}
			return Message{}, false, fmt.Errorf("transport: read frame header: %w", err)
		}
		m, n, err := parseFrameHeader(hdr)
		if _, derr := br.Discard(frameHeaderBytes); derr != nil && err == nil {
			return Message{}, false, fmt.Errorf("transport: read frame header: %w", derr)
		}
		if err != nil {
			return Message{}, false, err
		}
		d.active, d.msg, d.n = true, m, n
		d.idxOff, d.payOff, d.rawOff = 0, 0, 0
		if n > 0 {
			if m.Indices != nil {
				d.msg.Indices = GetIndices(n)
			}
			// The decoded payload comes from the shared pool; the receiver
			// owns it and may release it with PutPayload once consumed.
			d.msg.Payload = GetPayload(n)
		}
	}
	if d.n > 0 && d.msg.Indices != nil && d.idxOff < d.n {
		k, err := decodeIndicesFrom(br, d.msg.Indices[d.idxOff:])
		d.idxOff += k
		if err != nil {
			return Message{}, false, fmt.Errorf("transport: read indices: %w", err)
		}
	}
	if d.n > 0 {
		if d.msg.Dtype == tensor.F64 {
			k, err := decodeF64From(br, d.msg.Payload[d.payOff:])
			d.payOff += k
			if err != nil {
				return Message{}, false, fmt.Errorf("transport: read payload: %w", err)
			}
		} else if err := d.stagePacked(br); err != nil {
			return Message{}, false, fmt.Errorf("transport: read payload: %w", err)
		}
	}
	msg := d.msg
	*d = frameDecoder{}
	return msg, true, nil
}

// stagePacked accumulates a quantized payload's wire bytes into the pooled
// staging buffer and unpacks once complete (block dtypes want the whole run
// contiguous). Partial fills persist in rawBox across calls.
func (d *frameDecoder) stagePacked(br *bufio.Reader) error {
	wire := d.msg.Dtype.WireBytes(d.n)
	if d.rawBox == nil {
		bp := readBufs.Get().(*[]byte)
		raw := *bp
		if cap(raw) < wire {
			raw = make([]byte, wire)
		}
		*bp = raw[:wire]
		d.rawBox = bp
	}
	raw := *d.rawBox
	for d.rawOff < wire {
		k, err := br.Read(raw[d.rawOff:wire])
		d.rawOff += k
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
	}
	tensor.Unpack(d.msg.Dtype, d.msg.Payload, raw[:wire])
	*d.rawBox = raw[:0]
	readBufs.Put(d.rawBox)
	d.rawBox = nil
	return nil
}

// abort releases any partially-decoded frame's pooled buffers and resets
// the decoder. Call it when the stream is being torn down (or after a fatal
// step error); the decoder cannot resync mid-stream.
func (d *frameDecoder) abort() {
	if d.rawBox != nil {
		readBufs.Put(d.rawBox)
	}
	if d.active {
		PutPayload(d.msg.Payload)
		PutIndices(d.msg.Indices)
	}
	*d = frameDecoder{}
}
