// Package transport provides reliable, ordered point-to-point messaging
// between the ranks of a training job. Two implementations are provided: an
// in-memory mesh (goroutines + channels) for single-process clusters and a
// TCP mesh (net) for multi-process deployments. Both satisfy the Mesh
// interface consumed by the collective layer.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/tensor"
)

// MsgType distinguishes the wire messages of the collective protocols.
type MsgType uint8

// Message kinds. Start at 1 so the zero value is invalid.
const (
	// MsgChunk carries a gradient chunk during reduce-scatter/allgather.
	MsgChunk MsgType = iota + 1
	// MsgBroadcast carries a full tensor during a broadcast.
	MsgBroadcast
	// MsgControl carries small control payloads (activations, acks).
	MsgControl
	// MsgReduce carries partial sums during tree and halving-doubling
	// reductions (fold-in, recursive-halving and reduce-to-root traffic).
	MsgReduce
)

// Message is the unit of exchange on a Mesh.
type Message struct {
	// Type is the message kind.
	Type MsgType
	// From is the sender's rank.
	From int32
	// To is the receiver's rank.
	To int32
	// Iter tags the training iteration the message belongs to, so
	// cross-iteration traffic cannot be confused.
	Iter int64
	// Chunk is the ring chunk index for MsgChunk traffic.
	Chunk int32
	// Dtype is the payload's wire encoding. The zero value (tensor.F64)
	// ships raw float64 bits; lossy dtypes quantize the payload on encode
	// and the receiver observes the dequantized values. The in-memory mesh
	// simulates the same quantize→dequantize round trip so in-process and
	// TCP results are bit-identical.
	Dtype tensor.Dtype
	// Payload carries tensor data (always float64 in memory; Dtype only
	// governs the wire representation).
	Payload []float64
	// Indices, when non-nil, marks the message as SPARSE: Payload[i] is the
	// value of dense element Indices[i]. Top-k gradient exchange ships
	// (index, value) pairs this way. A sparse message must satisfy
	// len(Indices) == len(Payload); the index values themselves are opaque
	// to the transport (the collective validates range and ordering).
	Indices []int32
}

// headerBytes: type(1) dtype(1) from(4) to(4) iter(8) chunk(4)
// payload len(4) index count(4). The index-count field is appended after the
// original fields so pre-sparse offsets are unchanged.
const headerBytes = 1 + 1 + 4 + 4 + 8 + 4 + 4 + 4

// MaxPayloadElems bounds a single message's payload to guard decoders
// against corrupt or hostile length prefixes (128 MiB of float64s).
const MaxPayloadElems = 16 << 20

// ErrPayloadTooLarge is returned when encoding or decoding a message whose
// payload exceeds MaxPayloadElems.
var ErrPayloadTooLarge = errors.New("transport: payload too large")

// ErrUnknownDtype is returned when encoding or decoding a message whose
// dtype byte is not a known wire encoding.
var ErrUnknownDtype = errors.New("transport: unknown payload dtype")

// ErrSparseMismatch is returned when a sparse message's index count does not
// match its payload length.
var ErrSparseMismatch = errors.New("transport: sparse index/value length mismatch")

// Encode appends the wire form of m to buf and returns the extended slice.
// The format is little-endian: type(1) dtype(1) from(4) to(4) iter(8)
// chunk(4) len(4) nidx(4) indices(4·nidx bytes) payload(Dtype.WireBytes(len)
// bytes). len counts ELEMENTS; the byte size of the payload follows from the
// dtype. nidx is 0 for dense messages and must equal len for sparse ones.
func Encode(buf []byte, m Message) ([]byte, error) {
	if len(m.Payload) > MaxPayloadElems {
		return nil, fmt.Errorf("%w: %d elems", ErrPayloadTooLarge, len(m.Payload))
	}
	if !m.Dtype.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrUnknownDtype, m.Dtype)
	}
	if m.Indices != nil && len(m.Indices) != len(m.Payload) {
		return nil, fmt.Errorf("%w: %d indices, %d values", ErrSparseMismatch, len(m.Indices), len(m.Payload))
	}
	need := headerBytes + 4*len(m.Indices) + m.Dtype.WireBytes(len(m.Payload))
	off := len(buf)
	if cap(buf)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:off+need]
	b := buf[off:]
	b[0] = byte(m.Type)
	b[1] = byte(m.Dtype)
	binary.LittleEndian.PutUint32(b[2:], uint32(m.From))
	binary.LittleEndian.PutUint32(b[6:], uint32(m.To))
	binary.LittleEndian.PutUint64(b[10:], uint64(m.Iter))
	binary.LittleEndian.PutUint32(b[18:], uint32(m.Chunk))
	binary.LittleEndian.PutUint32(b[22:], uint32(len(m.Payload)))
	binary.LittleEndian.PutUint32(b[26:], uint32(len(m.Indices)))
	p := b[headerBytes:]
	for i, ix := range m.Indices {
		binary.LittleEndian.PutUint32(p[i*4:], uint32(ix))
	}
	p = p[4*len(m.Indices):]
	if m.Dtype == tensor.F64 {
		for i, f := range m.Payload {
			binary.LittleEndian.PutUint64(p[i*8:], math.Float64bits(f))
		}
	} else if len(m.Payload) > 0 {
		tensor.Pack(m.Dtype, p, m.Payload)
	}
	return buf, nil
}

// encodeBufs recycles wire-format scratch buffers across sends; readBufs
// recycles the raw payload staging buffer on the receive side.
var encodeBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}
var readBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// WriteMessage writes one encoded message to w, staging the wire bytes in a
// pooled scratch buffer so the encode allocates nothing steady-state.
func WriteMessage(w io.Writer, m Message) error {
	bp := encodeBufs.Get().(*[]byte)
	buf, err := Encode((*bp)[:0], m)
	if err != nil {
		encodeBufs.Put(bp)
		return err
	}
	_, err = w.Write(buf)
	*bp = buf[:0]
	encodeBufs.Put(bp)
	return err
}

// ReadMessage reads one message from r. It returns io.EOF unchanged on a
// clean end-of-stream before any header byte.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("transport: read header: %w", err)
	}
	m := Message{
		Type:  MsgType(hdr[0]),
		Dtype: tensor.Dtype(hdr[1]),
		From:  int32(binary.LittleEndian.Uint32(hdr[2:])),
		To:    int32(binary.LittleEndian.Uint32(hdr[6:])),
		Iter:  int64(binary.LittleEndian.Uint64(hdr[10:])),
		Chunk: int32(binary.LittleEndian.Uint32(hdr[18:])),
	}
	if !m.Dtype.Valid() {
		return Message{}, fmt.Errorf("%w: %d", ErrUnknownDtype, hdr[1])
	}
	n := binary.LittleEndian.Uint32(hdr[22:])
	if n > MaxPayloadElems {
		return Message{}, fmt.Errorf("%w: %d elems", ErrPayloadTooLarge, n)
	}
	nidx := binary.LittleEndian.Uint32(hdr[26:])
	if nidx != 0 && nidx != n {
		return Message{}, fmt.Errorf("%w: %d indices, %d values", ErrSparseMismatch, nidx, n)
	}
	if nidx > 0 {
		raw := make([]byte, 4*nidx)
		if _, err := io.ReadFull(r, raw); err != nil {
			return Message{}, fmt.Errorf("transport: read indices: %w", err)
		}
		m.Indices = make([]int32, nidx)
		for i := range m.Indices {
			m.Indices[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
		}
	}
	if n > 0 {
		wire := m.Dtype.WireBytes(int(n))
		bp := readBufs.Get().(*[]byte)
		raw := *bp
		if cap(raw) < wire {
			raw = make([]byte, wire)
		}
		raw = raw[:wire]
		if _, err := io.ReadFull(r, raw); err != nil {
			*bp = raw[:0]
			readBufs.Put(bp)
			return Message{}, fmt.Errorf("transport: read payload: %w", err)
		}
		// The decoded payload comes from the shared pool; the receiver
		// owns it and may release it with PutPayload once consumed.
		m.Payload = GetPayload(int(n))
		if m.Dtype == tensor.F64 {
			for i := range m.Payload {
				m.Payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
			}
		} else {
			tensor.Unpack(m.Dtype, m.Payload, raw)
		}
		*bp = raw[:0]
		readBufs.Put(bp)
	}
	return m, nil
}
