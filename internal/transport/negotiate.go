package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/tensor"
)

// Connection negotiation.
//
// A TCP mesh connection opens with a symmetric hello exchange: both ends
// send a fixed 20-byte hello and read the peer's, before any frame flows.
// The hello pins three things the pre-v1 handshake (a bare 4-byte rank) left
// implicit: that the peer speaks this protocol at all (magic), WHICH version
// it speaks (so mixed-version elastic clusters fail typed instead of
// decoding garbage), and what it can decode (capability bitmask), so a newer
// node can downgrade to the common capability set instead of wedging an
// older peer mid-collective.
//
//	offset  size  field
//	     0     4  magic "RNA1"
//	     4     1  protocol version
//	     5     3  reserved (zero)
//	     8     8  capability bitmask
//	    16     4  sender rank
//
// Negotiation: the connection speaks min(version_a, version_b), which both
// ends compute independently; each side's effective capability set is the
// AND of the two masks. A magic mismatch, short read, or version below the
// oldest this build supports rejects the connection with ErrVersionMismatch.

// helloMagic is "RNA1" read as a little-endian u32 — the first four bytes on
// every conforming connection.
const helloMagic uint32 = 'R' | 'N'<<8 | 'A'<<16 | '1'<<24

// helloBytes is the fixed hello size.
const helloBytes = 20

// Caps is the capability bitmask exchanged in the hello: what a peer's
// decoder understands beyond the v1 baseline (dense f64 frames on stream 0).
type Caps uint64

// Capability bits.
const (
	// CapF32 — decodes f32-compressed payloads.
	CapF32 Caps = 1 << iota
	// CapF16 — decodes f16-compressed payloads.
	CapF16
	// CapI8 — decodes block-quantized i8 payloads.
	CapI8
	// CapSparse — decodes sparse (index+value) top-k frames.
	CapSparse
	// CapStreams — routes frames by the header stream id (without it, only
	// stream 0 may be used toward this peer).
	CapStreams
	// CapPS — decodes the parameter-server frame family (push / pull /
	// push-pull / ack). Peers built before the PS service treat those
	// types as malformed frames, so a send toward a peer without this bit
	// is rejected typed instead of poisoning its decoder.
	CapPS
)

// CapsAll is every capability this build implements — the default advertised
// set.
const CapsAll = CapF32 | CapF16 | CapI8 | CapSparse | CapStreams | CapPS

// String lists the set bits for diagnostics.
func (c Caps) String() string {
	if c == 0 {
		return "none"
	}
	names := []struct {
		bit  Caps
		name string
	}{{CapF32, "f32"}, {CapF16, "f16"}, {CapI8, "i8"}, {CapSparse, "sparse"}, {CapStreams, "streams"}, {CapPS, "ps"}}
	out := ""
	for _, n := range names {
		if c&n.bit != 0 {
			if out != "" {
				out += "+"
			}
			out += n.name
		}
	}
	if rest := c &^ CapsAll; rest != 0 {
		if out != "" {
			out += "+"
		}
		out += fmt.Sprintf("unknown(%#x)", uint64(rest))
	}
	return out
}

// dtypeCap maps a wire dtype to the capability required to decode it (0 for
// the always-on f64 baseline).
func dtypeCap(d tensor.Dtype) Caps {
	switch d {
	case tensor.F32:
		return CapF32
	case tensor.F16:
		return CapF16
	case tensor.I8:
		return CapI8
	}
	return 0
}

// ErrVersionMismatch is returned when a peer does not speak a compatible
// frame protocol: wrong magic (not a mesh peer at all), a version this build
// cannot serve, or a hello cut short.
var ErrVersionMismatch = errors.New("transport: incompatible protocol version")

// ErrCapability is returned when a send requires a capability the negotiated
// connection lacks — e.g. a sparse frame toward a peer that never learned to
// decode one, or a non-zero stream id toward a peer without stream routing.
var ErrCapability = errors.New("transport: peer lacks required capability")

// putHello encodes a hello into b (helloBytes long).
func putHello(b []byte, version uint8, caps Caps, rank int) {
	binary.LittleEndian.PutUint32(b[0:], helloMagic)
	b[4] = version
	b[5], b[6], b[7] = 0, 0, 0
	binary.LittleEndian.PutUint64(b[8:], uint64(caps))
	binary.LittleEndian.PutUint32(b[16:], uint32(rank))
}

// parseHello validates and decodes a peer hello.
func parseHello(b []byte) (version uint8, caps Caps, rank int32, err error) {
	if magic := binary.LittleEndian.Uint32(b[0:]); magic != helloMagic {
		return 0, 0, 0, fmt.Errorf("%w: bad magic %#08x (not a mesh peer?)", ErrVersionMismatch, magic)
	}
	version = b[4]
	caps = Caps(binary.LittleEndian.Uint64(b[8:]))
	rank = int32(binary.LittleEndian.Uint32(b[16:]))
	return version, caps, rank, nil
}

// helloTimeout bounds the hello exchange on a fresh connection, so a peer
// that connects and goes silent (or a non-protocol service that never
// writes) cannot wedge mesh construction.
const helloTimeout = 10 * time.Second

// exchangeHello performs the symmetric hello on a fresh connection: write
// ours, read theirs, negotiate. Returns the peer's rank, the connection's
// version (min of both) and effective caps (AND of both).
func exchangeHello(conn net.Conn, version uint8, caps Caps, rank int) (peer int32, negVersion uint8, negCaps Caps, err error) {
	_ = conn.SetDeadline(time.Now().Add(helloTimeout))
	defer func() { _ = conn.SetDeadline(time.Time{}) }()

	var ours [helloBytes]byte
	putHello(ours[:], version, caps, rank)
	if _, err := conn.Write(ours[:]); err != nil {
		return 0, 0, 0, fmt.Errorf("transport: send hello: %w", err)
	}
	var theirs [helloBytes]byte
	if _, err := io.ReadFull(conn, theirs[:]); err != nil {
		// A short hello (peer hung up after a partial write, or sent fewer
		// bytes than a hello and closed) is a protocol mismatch, not a
		// transient I/O condition: nothing valid can follow.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, 0, fmt.Errorf("%w: short hello: %v", ErrVersionMismatch, err)
		}
		return 0, 0, 0, fmt.Errorf("transport: read hello: %w", err)
	}
	peerVersion, peerCaps, peerRank, err := parseHello(theirs[:])
	if err != nil {
		return 0, 0, 0, err
	}
	negVersion = version
	if peerVersion < negVersion {
		negVersion = peerVersion
	}
	if negVersion < ProtocolV1 {
		return 0, 0, 0, fmt.Errorf("%w: peer speaks v%d, this build serves v%d..v%d",
			ErrVersionMismatch, peerVersion, ProtocolV1, version)
	}
	return peerRank, negVersion, caps & peerCaps, nil
}

// CapsProvider is an optional Mesh capability: Caps reports the capability
// set every peer of this endpoint supports (the AND over its connections,
// including the endpoint's own). Meshes without negotiation (in-memory)
// support everything.
type CapsProvider interface {
	Caps() Caps
}

// MeshCaps returns the capability set usable across every rank of m. On a
// fully connected negotiated mesh each endpoint's AND includes every rank's
// advertised set, so all SPMD ranks compute the same value and can branch on
// it consistently (e.g. the collective layer falls back from sparse top-k to
// a dense schedule when any rank lacks CapSparse). Meshes that do not
// negotiate support everything.
func MeshCaps(m Mesh) Caps {
	type parented interface{ Parent() Mesh }
	for {
		if cp, ok := m.(CapsProvider); ok {
			return cp.Caps()
		}
		p, ok := m.(parented)
		if !ok {
			return CapsAll
		}
		m = p.Parent()
	}
}
