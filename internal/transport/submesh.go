package transport

import (
	"fmt"
	"sync"
)

// SubMesh presents a contiguous view over a subset of a parent mesh's
// ranks: local rank i maps to parent rank members[i]. Collectives run
// unmodified inside the subset — the hierarchical scheme runs one ring
// AllReduce per speed-homogeneous group this way — while the parent mesh
// remains usable for cross-group traffic on ranks outside the subset.
type SubMesh struct {
	parent  Mesh
	members []int
	local   int

	// demuxOnce/demux back StreamView when the parent lacks native stream
	// routing.
	demuxOnce sync.Once
	demux     *StreamDemux
}

var (
	_ Mesh         = (*SubMesh)(nil)
	_ OwnedSender  = (*SubMesh)(nil)
	_ StreamRouter = (*SubMesh)(nil)
)

// NewSubMesh wraps parent so that only `members` (distinct parent ranks,
// one of which must be the parent's own rank) are visible. Traffic from
// parent ranks outside the subset is NOT filtered — the caller must
// partition message kinds so group traffic and cross-group traffic cannot
// interleave on the same peer pairs.
func NewSubMesh(parent Mesh, members []int) (*SubMesh, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("transport: empty submesh")
	}
	seen := make(map[int]bool, len(members))
	local := -1
	for i, m := range members {
		if m < 0 || m >= parent.Size() {
			return nil, fmt.Errorf("transport: member %d outside parent size %d", m, parent.Size())
		}
		if seen[m] {
			return nil, fmt.Errorf("transport: duplicate member %d", m)
		}
		seen[m] = true
		if m == parent.Rank() {
			local = i
		}
	}
	if local < 0 {
		return nil, fmt.Errorf("transport: parent rank %d not in submesh %v", parent.Rank(), members)
	}
	out := &SubMesh{parent: parent, members: append([]int(nil), members...), local: local}
	return out, nil
}

// Rank implements Mesh (the local rank within the subset).
func (s *SubMesh) Rank() int { return s.local }

// Size implements Mesh (the subset size).
func (s *SubMesh) Size() int { return len(s.members) }

// Parent returns the wrapped mesh.
func (s *SubMesh) Parent() Mesh { return s.parent }

// GlobalRank maps a local rank to the parent rank.
func (s *SubMesh) GlobalRank(local int) (int, error) {
	if local < 0 || local >= len(s.members) {
		return 0, fmt.Errorf("transport: local rank %d of %d", local, len(s.members))
	}
	return s.members[local], nil
}

// Send implements Mesh.
func (s *SubMesh) Send(to int, m Message) error {
	g, err := s.GlobalRank(to)
	if err != nil {
		return err
	}
	return s.parent.Send(g, m)
}

// SendOwned implements OwnedSender by delegating to the parent's
// ownership-transfer path (or the copying fallback when the parent lacks
// one). Either way the caller relinquishes m.Payload.
func (s *SubMesh) SendOwned(to int, m Message) error {
	g, err := s.GlobalRank(to)
	if err != nil {
		PutPayload(m.Payload)
		return err
	}
	return SendOwned(s.parent, g, m)
}

// Recv implements Mesh.
func (s *SubMesh) Recv(from int) (Message, error) {
	g, err := s.GlobalRank(from)
	if err != nil {
		return Message{}, err
	}
	return s.parent.Recv(g)
}

// StreamView implements StreamRouter. When the parent routes streams
// natively (TCPMesh, or another SubMesh over one), the view is the parent's
// native stream re-windowed to this subset — so a collective on a stream
// view of a SubMesh still demultiplexes in the transport, one frame-header
// compare per message. A wrapper demux over a native parent would deadlock
// instead: the parent files stream frames under its own per-stream queues,
// so the wrapper's parent.Recv (stream 0) would never observe them.
// Non-native parents get a lazily created cooperative demux over this
// SubMesh.
func (s *SubMesh) StreamView(id int32) Mesh {
	if sr, ok := s.parent.(StreamRouter); ok {
		view, err := NewSubMesh(sr.StreamView(id), s.members)
		if err == nil {
			return view
		}
		// Unreachable in practice: members were validated against this same
		// parent geometry at construction. Fall through to the demux.
	}
	s.demuxOnce.Do(func() { s.demux = NewStreamDemux(s) })
	return s.demux.Stream(id)
}

// Close implements Mesh. Closing a SubMesh closes the parent endpoint,
// because the per-peer queues are shared; close only when the whole rank is
// done.
func (s *SubMesh) Close() error { return s.parent.Close() }
