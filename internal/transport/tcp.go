package transport

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tensor"
)

// dialTimeout bounds connection establishment to a peer.
const dialTimeout = 10 * time.Second

// tuneConn applies the mesh's socket options to a freshly established peer
// connection: TCP_NODELAY so small control messages (handshakes, initiator
// signals, scatter tails) don't sit out a Nagle delay behind unacked bulk
// data, and a keep-alive probe so a silently dead peer eventually fails the
// connection instead of wedging a Recv forever.
func tuneConn(conn net.Conn) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return
	}
	_ = tc.SetNoDelay(true)
	_ = tc.SetKeepAlive(true)
	_ = tc.SetKeepAlivePeriod(30 * time.Second)
}

// TCPMesh is a Mesh over real TCP connections: one full-duplex connection
// per peer pair, negotiated with the v1 hello exchange (see negotiate.go).
// It supports genuine multi-process deployment; NewTCPCluster wires a whole
// cluster on localhost for tests and examples.
//
// # Receive architecture
//
// There is no reader goroutine. The consumer that wants a message reads the
// socket itself: a per-connection pull election (a 1-slot token channel)
// admits one reader at a time, and frames for other logical streams
// encountered while draining are routed to their stream's queue, whose wake
// channel unblocks that stream's consumer even while the elected reader
// stays parked in a blocking read (the same selectable-election pattern as
// StreamDemux, one layer down). Compared to a reader goroutine pumping an
// inbox, the common case — consumer already waiting when the frame arrives —
// saves a full goroutine wakeup and queue handoff per message: the kernel
// wakes the consumer blocked in read(2) directly.
//
// # Backpressure and deadlock freedom
//
// Without an eager reader, two peers bulk-writing to each other could both
// block on full socket buffers. Flushes therefore run under a short write
// deadline; on expiry the writer drains its OWN receive side into the
// stream queues and retries. The drain is resumable at byte granularity
// (each connection keeps a frameDecoder that survives timeouts mid-frame),
// so it consumes exactly what the kernel has buffered and never blocks
// waiting for a frame's tail — a write-blocked rank always frees its
// receive window, which unblocks its peer's write, and transitively every
// cycle of bulk writers makes progress even when every frame in flight is
// larger than the socket buffers. Sends small enough for the socket buffer
// — all control traffic — complete immediately regardless of the
// receiver's schedule.
type TCPMesh struct {
	rank int
	size int

	// peers[j] is the connection state for rank j; peers[rank] is the
	// loopback slot (no conn, queues only).
	peers []*peerConn

	// caps is the capability set negotiated across ALL peers (AND of every
	// connection's negotiated set and our own advertisement); version is the
	// lowest negotiated protocol version. Fixed after DialMesh returns.
	caps    Caps
	version uint8

	// linkRate, when positive (stored as math.Float64bits), paces outbound
	// traffic to emulate a link of that many bytes/second (see SetLinkRate).
	// Per-peer overrides live on the peerConn (see SetPeerLinkRate).
	linkRate atomic.Uint64

	// sendObs, when set, receives one callback per flushed outbound batch —
	// the per-segment timing hook skew-aware re-planning feeds from (see
	// SetSendObserver).
	sendObs atomic.Value // SendObserver

	mu     sync.Mutex
	closed bool
}

var (
	_ Mesh         = (*TCPMesh)(nil)
	_ OwnedSender  = (*TCPMesh)(nil)
	_ CapsProvider = (*TCPMesh)(nil)
	_ StreamRouter = (*TCPMesh)(nil)
)

// peerConn is one peer's connection state.
type peerConn struct {
	conn net.Conn
	br   *bufio.Reader

	// pull is the read election: holding the token is the right to read the
	// socket. Capacity 1; consumers select sending into it against their
	// queue's wake channel.
	pull chan struct{}

	// rx is the connection's resumable inbound decoder. Only the elected
	// reader (consumer or write-stall drain) touches it, so a frame half
	// read when a drain's deadline expires is finished by whoever reads
	// the socket next.
	rx frameDecoder

	// caps and version are this connection's negotiated values.
	caps    Caps
	version uint8

	// Send side: wmu serializes writers; waiters counts senders committed
	// to acquiring wmu (the group-commit signal); fw coalesces frames;
	// nextFree is the emulated-link transmit horizon (guarded by wmu).
	wmu      sync.Mutex
	waiters  atomic.Int32
	fw       *frameWriter
	nextFree time.Time

	// rate, when positive (math.Float64bits), overrides the mesh-wide
	// linkRate for this connection only — an asymmetric emulated fabric
	// (see SetPeerLinkRate). Zero defers to the global rate.
	rate atomic.Uint64

	// Receive side: per-stream routed-frame queues. q0 (stream 0) is
	// preallocated — the non-multiplexed fast path takes no lock to find it.
	qmu     sync.Mutex
	queues  map[int32]*chanQueue
	q0      *chanQueue
	qclosed bool
}

func newPeerConn() *peerConn {
	return &peerConn{pull: make(chan struct{}, 1), q0: newChanQueue()}
}

// queue returns the routed-frame queue for a stream, creating it on first
// touch (born closed if the connection already failed).
func (c *peerConn) queue(stream int32) *chanQueue {
	if stream == 0 {
		return c.q0
	}
	c.qmu.Lock()
	q := c.queues[stream]
	if q == nil {
		q = newChanQueue()
		if c.queues == nil {
			c.queues = make(map[int32]*chanQueue)
		}
		if c.qclosed {
			q.close()
		}
		c.queues[stream] = q
	}
	c.qmu.Unlock()
	return q
}

// closeQueues fails every present and future consumer of this connection.
func (c *peerConn) closeQueues() {
	c.qmu.Lock()
	c.qclosed = true
	qs := make([]*chanQueue, 0, len(c.queues))
	for _, q := range c.queues {
		qs = append(qs, q)
	}
	c.qmu.Unlock()
	c.q0.close()
	for _, q := range qs {
		q.close()
	}
}

// MeshOptions tunes what DialMeshOpts advertises in its hello. The zero
// value advertises everything this build supports at the current protocol
// version.
type MeshOptions struct {
	// Caps is the advertised capability set (zero means CapsAll).
	Caps Caps
	// Version is the advertised protocol version (zero means ProtocolV1).
	// Values above ProtocolV1 exercise forward compatibility: the peer
	// negotiates the connection down to the highest version both speak.
	Version uint8
}

func (o MeshOptions) withDefaults() MeshOptions {
	if o.Caps == 0 {
		o.Caps = CapsAll
	}
	if o.Version == 0 {
		o.Version = ProtocolV1
	}
	return o
}

// DialMesh joins a TCP mesh as `rank`, advertising full capabilities. addrs
// lists every rank's listen address; ln must already be listening on
// addrs[rank]. Each rank dials every higher rank and accepts from every
// lower rank; every connection performs the hello exchange and rejects
// incompatible or non-protocol peers with ErrVersionMismatch.
func DialMesh(rank int, addrs []string, ln net.Listener) (*TCPMesh, error) {
	return DialMeshOpts(rank, addrs, ln, MeshOptions{})
}

// DialMeshOpts is DialMesh with an explicit capability/version
// advertisement — the handle mixed-capability and mixed-version tests and
// deployments use.
func DialMeshOpts(rank int, addrs []string, ln net.Listener, opts MeshOptions) (*TCPMesh, error) {
	size := len(addrs)
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("transport: rank %d of %d", rank, size)
	}
	opts = opts.withDefaults()
	m := &TCPMesh{
		rank:    rank,
		size:    size,
		peers:   make([]*peerConn, size),
		caps:    opts.Caps,
		version: opts.Version,
	}
	for j := range m.peers {
		m.peers[j] = newPeerConn()
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }

	attach := func(peer int, conn net.Conn, version uint8, caps Caps) {
		c := m.peers[peer]
		c.conn = conn
		c.br = bufio.NewReaderSize(conn, 1<<16)
		c.fw = newFrameWriter(conn, m.drainAssist)
		c.version = version
		c.caps = caps
	}

	// Dial higher ranks.
	for j := rank + 1; j < size; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", addrs[j], dialTimeout)
			if err != nil {
				fail(fmt.Errorf("dial rank %d at %s: %w", j, addrs[j], err))
				return
			}
			tuneConn(conn)
			peer, version, caps, err := exchangeHello(conn, opts.Version, opts.Caps, rank)
			if err != nil {
				_ = conn.Close()
				fail(fmt.Errorf("hello with rank %d: %w", j, err))
				return
			}
			if int(peer) != j {
				_ = conn.Close()
				fail(fmt.Errorf("transport: rank %d answered at %s, want %d", peer, addrs[j], j))
				return
			}
			attach(j, conn, version, caps)
		}()
	}
	// Accept lower ranks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for accepted := 0; accepted < rank; accepted++ {
			conn, err := ln.Accept()
			if err != nil {
				fail(fmt.Errorf("accept: %w", err))
				return
			}
			tuneConn(conn)
			peer, version, caps, err := exchangeHello(conn, opts.Version, opts.Caps, rank)
			if err != nil {
				_ = conn.Close()
				fail(fmt.Errorf("hello on accept: %w", err))
				return
			}
			if peer < 0 || int(peer) >= rank || m.peers[peer].conn != nil {
				_ = conn.Close()
				fail(fmt.Errorf("transport: bad hello rank %d", peer))
				return
			}
			attach(int(peer), conn, version, caps)
		}
	}()
	wg.Wait()
	if firstErr != nil {
		_ = m.Close()
		return nil, firstErr
	}

	// The mesh-wide capability set: what EVERY rank of the job can decode.
	// All ranks compute the same AND on a fully connected mesh, so SPMD
	// branches on MeshCaps agree globally.
	for j, c := range m.peers {
		if j == rank {
			continue
		}
		m.caps &= c.caps
		if c.version < m.version {
			m.version = c.version
		}
	}
	return m, nil
}

// Rank implements Mesh.
func (m *TCPMesh) Rank() int { return m.rank }

// Size implements Mesh.
func (m *TCPMesh) Size() int { return m.size }

// Caps implements CapsProvider: the capability set every rank of the mesh
// supports.
func (m *TCPMesh) Caps() Caps { return m.caps }

// Version returns the lowest protocol version negotiated with any peer —
// the version this mesh's frames travel as.
func (m *TCPMesh) Version() uint8 { return m.version }

func (m *TCPMesh) isClosed() bool {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	return closed
}

// Send implements Mesh.
func (m *TCPMesh) Send(to int, msg Message) error {
	return m.send(to, msg, false)
}

// SendOwned implements OwnedSender. Ownership of msg.Payload (and
// msg.Indices, when sparse) transfers to the transport: the buffers are
// recycled once their bytes are on the wire — which, under frame coalescing,
// may be a later sender's flush — and loopback delivery hands them to the
// local inbox without a copy.
func (m *TCPMesh) SendOwned(to int, msg Message) error {
	return m.send(to, msg, true)
}

// send is the shared wire path. When owned, the payload/index buffers belong
// to the transport from this point on, error or not.
func (m *TCPMesh) send(to int, msg Message, owned bool) error {
	release := func() {
		if owned {
			PutPayload(msg.Payload)
			PutIndices(msg.Indices)
		}
	}
	if to < 0 || to >= m.size {
		release()
		return fmt.Errorf("transport: send to rank %d of %d", to, m.size)
	}
	if m.isClosed() {
		release()
		return ErrClosed
	}
	msg.From = int32(m.rank)
	msg.To = int32(to)
	if to == m.rank {
		return m.sendSelf(msg, owned)
	}
	c := m.peers[to]
	if c.conn == nil {
		release()
		return fmt.Errorf("transport: no connection to rank %d", to)
	}

	// Capability gating against the negotiated per-connection set. Frames
	// the peer cannot decode are rejected typed (streams, sparse) or
	// transparently downgraded (compressed dtypes: quantize locally, ship
	// the result as f64 — the receiver observes bit-identical values at
	// full wire width).
	if msg.Stream != 0 && c.caps&CapStreams == 0 {
		release()
		return fmt.Errorf("%w: stream %d to rank %d (negotiated %v)", ErrCapability, msg.Stream, to, c.caps)
	}
	if msg.Indices != nil && c.caps&CapSparse == 0 {
		release()
		return fmt.Errorf("%w: sparse frame to rank %d (negotiated %v)", ErrCapability, to, c.caps)
	}
	if msg.Type.IsPS() && c.caps&CapPS == 0 {
		release()
		return fmt.Errorf("%w: ps frame to rank %d (negotiated %v)", ErrCapability, to, c.caps)
	}
	if dc := dtypeCap(msg.Dtype); dc != 0 && c.caps&dc == 0 {
		if !owned {
			if msg.Payload != nil {
				p := GetPayload(len(msg.Payload))
				copy(p, msg.Payload)
				msg.Payload = p
			}
			if msg.Indices != nil {
				ix := GetIndices(len(msg.Indices))
				copy(ix, msg.Indices)
				msg.Indices = ix
			}
			owned = true
		}
		tensor.RoundTrip(msg.Dtype, msg.Payload)
		msg.Dtype = tensor.F64
	}

	rate := math.Float64frombits(c.rate.Load())
	if rate == 0 {
		rate = math.Float64frombits(m.linkRate.Load())
	}
	obs, _ := m.sendObs.Load().(SendObserver)
	var start time.Time
	if obs != nil {
		start = time.Now()
	}
	c.waiters.Add(1)
	c.wmu.Lock()
	c.waiters.Add(-1)
	err := c.fw.enqueue(&msg, owned)
	if err != nil {
		c.wmu.Unlock()
		return err
	}
	// Group commit: when another sender is already committed to this
	// connection, leave the batch queued for it — the last sender in line
	// always flushes, so frames never linger. Only owned sends may defer
	// (a plain Send's zero-copy iovecs alias the caller's buffers, which
	// the caller is free to reuse once we return), and a full arena flushes
	// regardless to bound queue growth.
	if owned && c.waiters.Load() > 0 && len(c.fw.arena) < arenaCap/2 {
		c.wmu.Unlock()
		return nil
	}
	queued := c.fw.queuedBytes()
	err = c.fw.flush()
	var horizon time.Time
	if err == nil && rate > 0 {
		// Store-and-forward pacing: advance the connection's transmit
		// horizon by the batch's serialization time and wait until the
		// horizon, so outbound wire bytes flow at the emulated link rate.
		// The horizon is cumulative — back-to-back senders queue behind each
		// other exactly as frames on a shared link would.
		now := time.Now()
		if c.nextFree.Before(now) {
			c.nextFree = now
		}
		c.nextFree = c.nextFree.Add(time.Duration(float64(queued) / rate * 1e9))
		horizon = c.nextFree
	}
	c.wmu.Unlock()
	if !horizon.IsZero() {
		pacingWait(horizon)
	}
	if err == nil && obs != nil && queued > 0 {
		d := time.Since(start)
		if rate > 0 {
			// The pacing horizon IS the emulated link: report the batch's
			// modeled serialization time. Wall time would fold in the
			// timer overshoot of the pacing sleep — hundreds of µs of
			// scheduler noise that swamps sub-millisecond serialization
			// delays and flattens the very skew a link-rate estimator
			// exists to detect.
			d = time.Duration(float64(queued) / rate * 1e9)
		}
		obs(to, queued, d)
	}
	return err
}

// pacingSpinWindow is the tail of a pacing wait that busy-polls instead of
// sleeping. Go timers routinely overshoot by hundreds of microseconds under
// scheduler load; on a small-message emulated fabric that overshoot dwarfs
// the sub-millisecond serialization delays the pacer exists to model and
// flattens any configured link-rate skew. Sleeping only to within the window
// and yielding-polling the remainder keeps the modeled rates honest at
// microsecond granularity while bounding the burned CPU per flush.
const pacingSpinWindow = 500 * time.Microsecond

// pacingWait blocks until the transmit horizon: coarse timer sleep first,
// then a sched-yielding poll across the final spin window.
func pacingWait(horizon time.Time) {
	if d := time.Until(horizon); d > pacingSpinWindow {
		time.Sleep(d - pacingSpinWindow)
	}
	for time.Now().Before(horizon) {
		runtime.Gosched()
	}
}

// sendSelf is loopback delivery: mirror the wire path's copy AND
// quantization semantics, then push straight to the local queue.
func (m *TCPMesh) sendSelf(msg Message, owned bool) error {
	if owned {
		// The buffers are ours — quantize in place, no copy.
		tensor.RoundTrip(msg.Dtype, msg.Payload)
	} else {
		if msg.Payload != nil {
			p := GetPayload(len(msg.Payload))
			copy(p, msg.Payload)
			msg.Payload = p
			tensor.RoundTrip(msg.Dtype, p)
		}
		if msg.Indices != nil {
			ix := GetIndices(len(msg.Indices))
			copy(ix, msg.Indices)
			msg.Indices = ix
		}
	}
	if err := m.peers[m.rank].queue(msg.Stream).push(msg); err != nil {
		PutPayload(msg.Payload)
		PutIndices(msg.Indices)
		return err
	}
	return nil
}

// SetLinkRate makes every subsequent outbound flush pace itself so the
// connection's wire bytes flow at no more than bytesPerSec — an emulated
// link bandwidth. It exists for benchmarking and for emulating heterogeneous
// fabrics on fast loopback hardware: real loopback is CPU-bound, so without
// a rate cap the wire-byte savings of compressed payloads are invisible.
// A rate of 0 (the default) disables pacing. Pacing is applied per
// connection on the sender side only. Safe to call concurrently with
// in-flight sends (the rate is read atomically per flush), though a rate
// change mid-collective applies only to flushes that start after it.
func (m *TCPMesh) SetLinkRate(bytesPerSec float64) {
	m.linkRate.Store(math.Float64bits(bytesPerSec))
}

// SetPeerLinkRate overrides the emulated link rate for this rank's
// connection to one peer, so a benchmark can emulate a genuinely
// heterogeneous fabric (each directed link paced independently) instead of
// one global pace. A rate of 0 removes the override and the connection
// falls back to the mesh-wide SetLinkRate value; the global call thus stays
// the uniform special case. Safe to call concurrently with in-flight sends,
// with the same flush-boundary semantics as SetLinkRate.
func (m *TCPMesh) SetPeerLinkRate(rank int, bytesPerSec float64) error {
	if rank < 0 || rank >= m.size {
		return fmt.Errorf("transport: peer link rate for rank %d of %d", rank, m.size)
	}
	m.peers[rank].rate.Store(math.Float64bits(bytesPerSec))
	return nil
}

// SendObserver receives one callback per flushed outbound batch: the
// destination rank, the wire bytes the flush carried, and the batch's link
// occupancy. On a paced (emulated) link that is the modeled serialization
// time queued/rate — the pacing horizon is the link, and reporting the
// model rather than wall time keeps timer-overshoot noise out of the
// estimate — so feeding the callbacks into topology.LinkObservations
// recovers the per-link rates online, the re-planning loop's input. On an
// unpaced fabric the duration is the wall time of the local write, which
// underestimates transit; callers that need real transit times should
// calibrate explicitly instead.
type SendObserver func(to int, wireBytes int, d time.Duration)

// SetSendObserver installs fn as the mesh's send-timing hook (nil removes
// it). The callback runs on the sender's goroutine after the paced sleep;
// it must not block and must be safe for concurrent calls from multiple
// sender goroutines. Deferred group-commit enqueues are not observed — their
// bytes are attributed to the flush that carries them.
func (m *TCPMesh) SetSendObserver(fn SendObserver) {
	m.sendObs.Store(fn)
}

// Recv implements Mesh: the next stream-0 message from `from`.
func (m *TCPMesh) Recv(from int) (Message, error) {
	return m.recvStream(from, 0)
}

// StreamView implements StreamRouter: a Mesh view whose traffic travels on
// logical stream id, routed by the frame header at this layer — no demux
// wrapper, no Iter-bit packing. Views are cheap and stateless.
func (m *TCPMesh) StreamView(id int32) Mesh {
	return &tcpStream{m: m, id: id}
}

// recvStream returns the next message rank `from` sent on the given stream.
func (m *TCPMesh) recvStream(from int, stream int32) (Message, error) {
	if from < 0 || from >= m.size {
		return Message{}, fmt.Errorf("transport: recv from rank %d of %d", from, m.size)
	}
	c := m.peers[from]
	own := c.queue(stream)
	if c.conn == nil {
		// Loopback: queues only.
		return own.pop()
	}
	for {
		if msg, ok := own.tryPop(); ok {
			return msg, nil
		}
		select {
		case <-own.ready():
			// The elected reader routed a message to us (or left a stale
			// token, or the queue closed); loop and re-check. An empty
			// closed queue fails fast here instead of waiting out the
			// election.
			if msg, ok := own.tryPop(); ok {
				return msg, nil
			}
			if own.isClosed() {
				return Message{}, ErrClosed
			}
		case c.pull <- struct{}{}:
			// We are the reader: drain one frame off the socket, then stand
			// down so the election stays fair and a consumer whose message
			// we routed can proceed.
			msg, ok, err := m.readOne(c, own, stream)
			<-c.pull
			if err != nil {
				return Message{}, err
			}
			if ok {
				return msg, nil
			}
		}
	}
}

// readOne, running as the elected reader for connection c, returns this
// stream's next message when one is available (already routed, or next off
// the socket). A frame for another stream is routed to its queue — whose
// wake channel unblocks that stream's consumer even if it is mid-select —
// and ok=false tells the caller to re-enter the election.
func (m *TCPMesh) readOne(c *peerConn, own *chanQueue, stream int32) (Message, bool, error) {
	// Another consumer may have routed our message while we waited for the
	// election; prefer it over reading further.
	if msg, ok := own.tryPop(); ok {
		return msg, true, nil
	}
	msg, err := c.readFrame()
	if err != nil {
		c.closeQueues()
		if isDecodeErr(err) {
			// A malformed or incompatible frame: surface the typed error to
			// the consumer that hit it; everyone else observes ErrClosed.
			return Message{}, false, err
		}
		return Message{}, false, ErrClosed
	}
	if msg.Stream == stream {
		return msg, true, nil
	}
	// Routed strays never fail: queues close only with the connection.
	_ = c.queue(msg.Stream).push(msg)
	return Message{}, false, nil
}

// isDecodeErr reports whether a readFrame failure is a protocol violation
// (worth surfacing typed) rather than connection teardown.
func isDecodeErr(err error) bool {
	return errors.Is(err, ErrBadFrame) || errors.Is(err, ErrUnknownDtype) ||
		errors.Is(err, ErrPayloadTooLarge) || errors.Is(err, ErrVersionMismatch)
}

// readFrame reads the connection's next frame, resuming any decode a
// write-stall drain left half done. The caller must hold the read election.
func (c *peerConn) readFrame() (Message, error) {
	for {
		msg, done, err := c.rx.step(c.br)
		if err != nil {
			c.rx.abort()
			return Message{}, err
		}
		if done {
			return msg, nil
		}
	}
}

// drainProbe is the read deadline a write-stalled drain arms per decode
// step: reads return as soon as the kernel has any bytes buffered, so the
// full wait is only ever paid probing a silent peer. A deadline in the past
// would NOT work as a cheaper probe — Go fails an expired-deadline read
// without attempting the syscall, so data sitting in the socket buffer
// would never be seen and the drain would assist nothing.
const drainProbe = 200 * time.Microsecond

// drainAssist runs on a write-blocked sender (see frameWriter.flush): for
// every peer whose read election is free, consume whatever bytes are
// already in flight to us, routing completed frames to their stream
// queues. This is what keeps mutual bulk writes live without a reader
// goroutine — a blocked writer empties its own receive window, which opens
// the peer's. The drain never blocks on a frame's remaining bytes: each
// connection's frameDecoder checkpoints mid-frame, so a frame larger than
// the socket buffers is consumed incrementally across successive stalls
// (a blocking read here would deadlock a ring of ranks all mid-frame).
func (m *TCPMesh) drainAssist() {
	for j, c := range m.peers {
		if j == m.rank || c == nil || c.conn == nil {
			continue
		}
		select {
		case c.pull <- struct{}{}:
		default:
			// A consumer is reading this peer; it is draining already.
			continue
		}
		m.drainPeer(c)
		<-c.pull
	}
}

// drainPeer consumes buffered bytes from one connection, at most one
// drainProbe wait per decode step.
func (m *TCPMesh) drainPeer(c *peerConn) {
	for {
		_ = c.conn.SetReadDeadline(time.Now().Add(drainProbe))
		msg, done, err := c.rx.step(c.br)
		if err != nil {
			_ = c.conn.SetReadDeadline(time.Time{})
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return // dry; a partial frame resumes with the next reader
			}
			// Real connection failure: fail the queues so consumers see it.
			c.rx.abort()
			c.closeQueues()
			return
		}
		if done {
			_ = c.queue(msg.Stream).push(msg)
		}
	}
}

// Close implements Mesh.
func (m *TCPMesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	for _, c := range m.peers {
		if c == nil {
			continue
		}
		if c.conn != nil {
			_ = c.conn.Close()
		}
		c.closeQueues()
	}
	return nil
}

// tcpStream is one logical stream's view of a TCPMesh.
type tcpStream struct {
	m  *TCPMesh
	id int32
}

var (
	_ Mesh        = (*tcpStream)(nil)
	_ OwnedSender = (*tcpStream)(nil)
)

func (s *tcpStream) Rank() int { return s.m.rank }
func (s *tcpStream) Size() int { return s.m.size }

func (s *tcpStream) Send(to int, msg Message) error {
	msg.Stream = s.id
	return s.m.send(to, msg, false)
}

func (s *tcpStream) SendOwned(to int, msg Message) error {
	msg.Stream = s.id
	return s.m.send(to, msg, true)
}

func (s *tcpStream) Recv(from int) (Message, error) {
	return s.m.recvStream(from, s.id)
}

// Close closes the underlying mesh (all streams share its lifecycle).
func (s *tcpStream) Close() error { return s.m.Close() }

// NewTCPCluster starts size TCP mesh endpoints on localhost ephemeral ports
// and fully connects them. It is the in-process harness used by tests and
// the tcpcluster example; real deployments call DialMesh with their own
// address book.
func NewTCPCluster(size int) ([]*TCPMesh, error) {
	return NewTCPClusterOpts(size, nil)
}

// NewTCPClusterOpts is NewTCPCluster with per-rank hello advertisements
// (optsFor may be nil for all-default), for exercising mixed-capability and
// mixed-version meshes in one process.
func NewTCPClusterOpts(size int, optsFor func(rank int) MeshOptions) ([]*TCPMesh, error) {
	if size <= 0 {
		return nil, fmt.Errorf("transport: cluster of %d ranks", size)
	}
	listeners := make([]net.Listener, size)
	addrs := make([]string, size)
	for i := 0; i < size; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				_ = l.Close()
			}
			return nil, fmt.Errorf("listen: %w", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}

	meshes := make([]*TCPMesh, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var opts MeshOptions
			if optsFor != nil {
				opts = optsFor(i)
			}
			meshes[i], errs[i] = DialMeshOpts(i, addrs, listeners[i], opts)
		}()
	}
	wg.Wait()
	for _, ln := range listeners {
		_ = ln.Close()
	}
	if err := errors.Join(errs...); err != nil {
		for _, m := range meshes {
			if m != nil {
				_ = m.Close()
			}
		}
		return nil, err
	}
	return meshes, nil
}
