package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/tensor"
)

// dialTimeout bounds connection establishment to a peer.
const dialTimeout = 10 * time.Second

// tuneConn applies the mesh's socket options to a freshly established peer
// connection: TCP_NODELAY so small control messages (handshakes, initiator
// signals, scatter tails) don't sit out a Nagle delay behind unacked bulk
// data, and a keep-alive probe so a silently dead peer eventually fails the
// connection instead of wedging a Recv forever.
func tuneConn(conn net.Conn) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return
	}
	_ = tc.SetNoDelay(true)
	_ = tc.SetKeepAlive(true)
	_ = tc.SetKeepAlivePeriod(30 * time.Second)
}

// TCPMesh is a Mesh over real TCP connections: one full-duplex connection
// per peer pair, pairwise established with a rank handshake. It supports
// genuine multi-process deployment; NewTCPCluster wires a whole cluster on
// localhost for tests and examples.
type TCPMesh struct {
	rank int
	size int

	// conns[j] is the connection to rank j (nil for self).
	conns []net.Conn
	// sendMu[j] serializes writers on conns[j].
	sendMu []sync.Mutex
	// inbox[j] receives messages read off the wire from rank j.
	inbox []*chanQueue

	// linkRate, when positive, paces outbound traffic to emulate a link of
	// that many bytes/second (see SetLinkRate). nextFree[j] is the emulated
	// transmit horizon of conns[j], guarded by sendMu[j].
	linkRate float64
	nextFree []time.Time

	readers sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

var (
	_ Mesh        = (*TCPMesh)(nil)
	_ OwnedSender = (*TCPMesh)(nil)
)

// DialMesh joins a TCP mesh as `rank`. addrs lists every rank's listen
// address; ln must already be listening on addrs[rank]. Each rank dials
// every higher rank and accepts from every lower rank, exchanging a
// four-byte rank handshake.
func DialMesh(rank int, addrs []string, ln net.Listener) (*TCPMesh, error) {
	size := len(addrs)
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("transport: rank %d of %d", rank, size)
	}
	m := &TCPMesh{
		rank:     rank,
		size:     size,
		conns:    make([]net.Conn, size),
		sendMu:   make([]sync.Mutex, size),
		inbox:    make([]*chanQueue, size),
		nextFree: make([]time.Time, size),
	}
	for j := range m.inbox {
		m.inbox[j] = newChanQueue()
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }

	// Dial higher ranks.
	for j := rank + 1; j < size; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", addrs[j], dialTimeout)
			if err != nil {
				fail(fmt.Errorf("dial rank %d at %s: %w", j, addrs[j], err))
				return
			}
			tuneConn(conn)
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(rank))
			if _, err := conn.Write(hello[:]); err != nil {
				_ = conn.Close()
				fail(fmt.Errorf("handshake with rank %d: %w", j, err))
				return
			}
			m.conns[j] = conn
		}()
	}
	// Accept lower ranks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for accepted := 0; accepted < rank; accepted++ {
			conn, err := ln.Accept()
			if err != nil {
				fail(fmt.Errorf("accept: %w", err))
				return
			}
			tuneConn(conn)
			var hello [4]byte
			if _, err := io.ReadFull(conn, hello[:]); err != nil {
				_ = conn.Close()
				fail(fmt.Errorf("read handshake: %w", err))
				return
			}
			peer := int(binary.LittleEndian.Uint32(hello[:]))
			if peer < 0 || peer >= rank || m.conns[peer] != nil {
				_ = conn.Close()
				fail(fmt.Errorf("bad handshake rank %d", peer))
				return
			}
			m.conns[peer] = conn
		}
	}()
	wg.Wait()
	if firstErr != nil {
		_ = m.Close()
		return nil, firstErr
	}

	for j, conn := range m.conns {
		if conn == nil {
			continue
		}
		j, conn := j, conn
		m.readers.Add(1)
		go func() {
			defer m.readers.Done()
			m.readLoop(j, conn)
		}()
	}
	return m, nil
}

// readLoop pumps messages from one peer connection into its inbox queue
// until the connection or mesh closes. The bufio.Reader batches the
// header+payload reads of each message into large socket reads.
func (m *TCPMesh) readLoop(peer int, conn net.Conn) {
	r := bufio.NewReaderSize(conn, 1<<16)
	for {
		msg, err := ReadMessage(r)
		if err != nil {
			// EOF or a closed connection ends the stream; close the
			// peer queue so blocked Recv calls observe ErrClosed.
			m.inbox[peer].close()
			return
		}
		if m.inbox[peer].push(msg) != nil {
			return
		}
	}
}

// Rank implements Mesh.
func (m *TCPMesh) Rank() int { return m.rank }

// Size implements Mesh.
func (m *TCPMesh) Size() int { return m.size }

// Send implements Mesh.
func (m *TCPMesh) Send(to int, msg Message) error {
	if to < 0 || to >= m.size {
		return fmt.Errorf("transport: send to rank %d of %d", to, m.size)
	}
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return ErrClosed
	}
	msg.From = int32(m.rank)
	msg.To = int32(to)
	if to == m.rank {
		// Mirror the wire path's copy AND quantization semantics for
		// loopback delivery.
		if msg.Payload != nil {
			p := GetPayload(len(msg.Payload))
			copy(p, msg.Payload)
			msg.Payload = p
			tensor.RoundTrip(msg.Dtype, p)
		}
		if msg.Indices != nil {
			msg.Indices = append([]int32(nil), msg.Indices...)
		}
		return m.inbox[m.rank].push(msg)
	}
	conn := m.conns[to]
	if conn == nil {
		return fmt.Errorf("transport: no connection to rank %d", to)
	}
	// Serialize into a pooled scratch buffer BEFORE taking the connection
	// lock: encoding a large gradient is pure CPU work and holding the
	// lock across it would serialize concurrent senders to the same peer.
	// The lock guards only the socket write.
	bp := encodeBufs.Get().(*[]byte)
	buf, err := Encode((*bp)[:0], msg)
	if err != nil {
		encodeBufs.Put(bp)
		return err
	}
	var sleep time.Duration
	m.sendMu[to].Lock()
	_, err = conn.Write(buf)
	if err == nil && m.linkRate > 0 {
		// Store-and-forward pacing: advance the connection's transmit
		// horizon by this message's serialization time and sleep until the
		// horizon, so outbound wire bytes flow at the emulated link rate.
		// The horizon is cumulative — back-to-back senders queue behind each
		// other exactly as frames on a shared link would.
		now := time.Now()
		if m.nextFree[to].Before(now) {
			m.nextFree[to] = now
		}
		m.nextFree[to] = m.nextFree[to].Add(time.Duration(float64(len(buf)) / m.linkRate * 1e9))
		sleep = m.nextFree[to].Sub(now)
	}
	m.sendMu[to].Unlock()
	*bp = buf[:0]
	encodeBufs.Put(bp)
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return err
}

// SetLinkRate makes every subsequent outbound message pace itself so the
// connection's wire bytes flow at no more than bytesPerSec — an emulated
// link bandwidth. It exists for benchmarking and for emulating heterogeneous
// fabrics on fast loopback hardware: real loopback is CPU-bound, so without
// a rate cap the wire-byte savings of compressed payloads are invisible.
// A rate of 0 (the default) disables pacing. Pacing is applied per
// connection on the sender side only; call it on every rank of a mesh
// before traffic starts (it is not synchronized with in-flight sends).
func (m *TCPMesh) SetLinkRate(bytesPerSec float64) {
	m.linkRate = bytesPerSec
}

// SendOwned implements OwnedSender. On the wire path the payload is fully
// consumed by serialization, so ownership transfer just means recycling the
// buffer into the pool after encoding; loopback delivery hands the buffer to
// the local inbox without a copy.
func (m *TCPMesh) SendOwned(to int, msg Message) error {
	if to == m.rank {
		m.mu.Lock()
		closed := m.closed
		m.mu.Unlock()
		if closed {
			PutPayload(msg.Payload)
			return ErrClosed
		}
		msg.From = int32(m.rank)
		msg.To = int32(to)
		tensor.RoundTrip(msg.Dtype, msg.Payload)
		if err := m.inbox[m.rank].push(msg); err != nil {
			PutPayload(msg.Payload)
			return err
		}
		return nil
	}
	err := m.Send(to, msg)
	PutPayload(msg.Payload)
	return err
}

// Recv implements Mesh.
func (m *TCPMesh) Recv(from int) (Message, error) {
	if from < 0 || from >= m.size {
		return Message{}, fmt.Errorf("transport: recv from rank %d of %d", from, m.size)
	}
	return m.inbox[from].pop()
}

// Close implements Mesh.
func (m *TCPMesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	for _, conn := range m.conns {
		if conn != nil {
			_ = conn.Close()
		}
	}
	for _, q := range m.inbox {
		q.close()
	}
	m.readers.Wait()
	return nil
}

// NewTCPCluster starts size TCP mesh endpoints on localhost ephemeral ports
// and fully connects them. It is the in-process harness used by tests and
// the tcpcluster example; real deployments call DialMesh with their own
// address book.
func NewTCPCluster(size int) ([]*TCPMesh, error) {
	if size <= 0 {
		return nil, fmt.Errorf("transport: cluster of %d ranks", size)
	}
	listeners := make([]net.Listener, size)
	addrs := make([]string, size)
	for i := 0; i < size; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				_ = l.Close()
			}
			return nil, fmt.Errorf("listen: %w", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}

	meshes := make([]*TCPMesh, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			meshes[i], errs[i] = DialMesh(i, addrs, listeners[i])
		}()
	}
	wg.Wait()
	for _, ln := range listeners {
		_ = ln.Close()
	}
	if err := errors.Join(errs...); err != nil {
		for _, m := range meshes {
			if m != nil {
				_ = m.Close()
			}
		}
		return nil, err
	}
	return meshes, nil
}
