package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestModelSpecs(t *testing.T) {
	tests := []struct {
		spec   ModelSpec
		params int64
	}{
		{ResNet50(), 25_559_081},
		{VGG16(), 138_344_128},
		{LSTM(), 34_663_525},
		{Transformer(), 61_362_176},
		{ResNet56(), 855_770},
		{InceptionV3(), 23_851_784},
	}
	for _, tc := range tests {
		if tc.spec.Params != tc.params {
			t.Errorf("%s params = %d, want %d", tc.spec.Name, tc.spec.Params, tc.params)
		}
		if tc.spec.GradientBytes() != tc.params*4 {
			t.Errorf("%s gradient bytes = %d, want %d", tc.spec.Name, tc.spec.GradientBytes(), tc.params*4)
		}
		if tc.spec.BaseStep <= 0 {
			t.Errorf("%s base step not positive", tc.spec.Name)
		}
		if tc.spec.String() == "" {
			t.Errorf("%s empty String()", tc.spec.Name)
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("VGG16")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "VGG16" {
		t.Errorf("ByName returned %s", m.Name)
	}
	if _, err := ByName("AlexNet"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestBalancedSampler(t *testing.T) {
	b := Balanced{Base: 100 * time.Millisecond, Jitter: 0.05}
	src := rng.New(1)
	for i := 0; i < 1000; i++ {
		d := b.Sample(src)
		if d < 95*time.Millisecond || d > 105*time.Millisecond {
			t.Fatalf("balanced sample %v outside ±5%%", d)
		}
	}
	if b.Mean() != 100*time.Millisecond {
		t.Errorf("Mean = %v", b.Mean())
	}
}

func TestBalancedExtremeJitterNonNegative(t *testing.T) {
	b := Balanced{Base: 10 * time.Millisecond, Jitter: 2}
	src := rng.New(1)
	for i := 0; i < 1000; i++ {
		if d := b.Sample(src); d < 0 {
			t.Fatalf("negative step time %v", d)
		}
	}
}

func TestVideoBatchSamplerMatchesFig2(t *testing.T) {
	s := VideoBatchSampler()
	src := rng.New(42)
	const n = 20000
	var sum, sumSq float64
	minSeen, maxSeen := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		d := s.Sample(src)
		ms := float64(d) / float64(time.Millisecond)
		if ms < 156 || ms > 8000 {
			t.Fatalf("sample %v outside [156ms, 8000ms]", d)
		}
		sum += ms
		sumSq += ms * ms
		minSeen = math.Min(minSeen, ms)
		maxSeen = math.Max(maxSeen, ms)
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	// The clamp shifts the moments slightly; accept 10%.
	if math.Abs(mean-1219)/1219 > 0.10 {
		t.Errorf("video batch mean = %.0f ms, want ~1219", mean)
	}
	if math.Abs(sd-760)/760 > 0.25 {
		t.Errorf("video batch stddev = %.0f ms, want ~760", sd)
	}
	if maxSeen < 3000 {
		t.Errorf("long tail missing: max sample %.0f ms", maxSeen)
	}
}

func TestVideoLengthFramesMatchesFig2a(t *testing.T) {
	src := rng.New(7)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		f := VideoLengthFrames(src)
		if f < 29 || f > 1776 {
			t.Fatalf("video length %v outside [29, 1776]", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-186)/186 > 0.05 {
		t.Errorf("video length mean = %.1f, want ~186", mean)
	}
}

func TestSentenceBatchSampler(t *testing.T) {
	s := SentenceBatchSampler(200 * time.Millisecond)
	src := rng.New(3)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		d := s.Sample(src)
		if d < 50*time.Millisecond || d > 800*time.Millisecond {
			t.Fatalf("sentence sample %v outside clamp", d)
		}
		sum += float64(d)
	}
	mean := time.Duration(sum / n)
	if math.Abs(float64(mean-200*time.Millisecond)) > float64(15*time.Millisecond) {
		t.Errorf("sentence mean = %v, want ~200ms", mean)
	}
}

func TestCommTransferCosts(t *testing.T) {
	c := CommModel{Latency: time.Millisecond, Bandwidth: 1e9}
	// 1 MB at 1 GB/s = 1 ms transfer + 1 ms latency.
	got := c.PointToPoint(1_000_000)
	if got != 2*time.Millisecond {
		t.Errorf("PointToPoint = %v, want 2ms", got)
	}
	if c.PointToPoint(-5) != time.Millisecond {
		t.Errorf("negative bytes should cost only latency")
	}
}

func TestCommZeroBandwidth(t *testing.T) {
	c := CommModel{Latency: time.Millisecond}
	if got := c.PointToPoint(1 << 30); got != time.Millisecond {
		t.Errorf("zero-bandwidth transfer = %v, want latency only", got)
	}
}

func TestRingAllReduceScaling(t *testing.T) {
	c := CommModel{Latency: 0, Bandwidth: 1e9}
	// Ring: 2(N-1) * (S/N)/B. For S=1e9, B=1e9: N=2 -> 1s, N=4 -> 1.5s,
	// N->inf -> 2s. Bandwidth term must be nearly N-independent.
	t2 := c.RingAllReduce(2, 1e9)
	t4 := c.RingAllReduce(4, 1e9)
	t16 := c.RingAllReduce(16, 1e9)
	if math.Abs(t2.Seconds()-1.0) > 0.01 {
		t.Errorf("ring N=2 = %v, want ~1s", t2)
	}
	if math.Abs(t4.Seconds()-1.5) > 0.01 {
		t.Errorf("ring N=4 = %v, want ~1.5s", t4)
	}
	if math.Abs(t16.Seconds()-1.875) > 0.01 {
		t.Errorf("ring N=16 = %v, want ~1.875s", t16)
	}
	if c.RingAllReduce(1, 1e9) != 0 {
		t.Error("single-node allreduce should be free")
	}
}

func TestNaiveVsRing(t *testing.T) {
	c := DefaultComm()
	n := 8
	bytes := int64(100_000_000)
	ring := c.RingAllReduce(n, bytes)
	naive := c.NaiveAllReduce(n, bytes)
	if naive <= ring {
		t.Errorf("naive (%v) should cost more than ring (%v) for large buffers", naive, ring)
	}
	if c.NaiveAllReduce(1, bytes) != 0 {
		t.Error("single-node naive allreduce should be free")
	}
}

func TestBroadcastLogSteps(t *testing.T) {
	c := CommModel{Latency: time.Millisecond, Bandwidth: 0}
	if got := c.Broadcast(1, 1000); got != 0 {
		t.Errorf("broadcast to self = %v, want 0", got)
	}
	if got := c.Broadcast(2, 1000); got != time.Millisecond {
		t.Errorf("broadcast n=2 = %v, want 1 step", got)
	}
	if got := c.Broadcast(8, 1000); got != 3*time.Millisecond {
		t.Errorf("broadcast n=8 = %v, want 3 steps", got)
	}
	if got := c.Broadcast(9, 1000); got != 4*time.Millisecond {
		t.Errorf("broadcast n=9 = %v, want 4 steps", got)
	}
}

func TestPSPushPull(t *testing.T) {
	c := CommModel{Latency: time.Millisecond, Bandwidth: 1e9}
	if got := c.PSPushPull(1_000_000); got != 4*time.Millisecond {
		t.Errorf("PSPushPull = %v, want 4ms", got)
	}
}

func TestHostDeviceCopy(t *testing.T) {
	c := CommModel{PCIeBandwidth: 1e9}
	if got := c.HostDeviceCopy(5e8); got != 500*time.Millisecond {
		t.Errorf("HostDeviceCopy = %v, want 500ms", got)
	}
	if got := c.RNACopyOverhead(5e8); got != time.Second {
		t.Errorf("RNACopyOverhead = %v, want 1s", got)
	}
	var zero CommModel
	if zero.HostDeviceCopy(1e9) != 0 {
		t.Error("zero PCIe bandwidth should cost 0")
	}
}

func TestTable5OverheadShape(t *testing.T) {
	// The paper's Table 5: VGG16 (23%) and Transformer (18%) pay more
	// relative copy overhead than ResNet50 (6.2%) and LSTM (3.8%).
	c := DefaultComm()
	frac := func(m ModelSpec) float64 {
		oh := c.RNACopyOverhead(m.GradientBytes())
		return float64(oh) / float64(m.BaseStep+oh)
	}
	resnet, vgg := frac(ResNet50()), frac(VGG16())
	lstm, tf := frac(LSTM()), frac(Transformer())
	if !(vgg > tf && tf > resnet && resnet > lstm) {
		t.Errorf("overhead ordering violated: vgg=%.3f tf=%.3f resnet=%.3f lstm=%.3f",
			vgg, tf, resnet, lstm)
	}
	if vgg < 0.10 || vgg > 0.35 {
		t.Errorf("VGG16 overhead %.3f outside plausible band around 23%%", vgg)
	}
	if lstm > 0.08 {
		t.Errorf("LSTM overhead %.3f should be small (paper: 3.8%%)", lstm)
	}
}

func TestCommString(t *testing.T) {
	if DefaultComm().String() == "" {
		t.Error("empty comm String()")
	}
}

func TestPSPushPullWire(t *testing.T) {
	c := CommModel{Latency: time.Millisecond, Bandwidth: 1e9}
	const elems = 1 << 20
	// One chunk degenerates to the monolithic round trip.
	if got, want := c.PSPushPullWire(elems, 1, tensor.F64), c.PSPushPull(8*elems); got != want {
		t.Errorf("1-chunk wire cost = %v, monolithic = %v", got, want)
	}
	// Pipelining strictly helps: later acks hide behind earlier pushes,
	// and more chunks expose less of the downlink.
	prev := c.PSPushPullWire(elems, 1, tensor.F64)
	for _, chunks := range []int{2, 4, 8, 16} {
		got := c.PSPushPullWire(elems, chunks, tensor.F64)
		if got >= prev {
			t.Errorf("%d chunks cost %v, not below %v", chunks, got, prev)
		}
		prev = got
	}
	// The pipeline can never beat the uplink serialization bound.
	floor := c.Latency + c.bytesCost(8*elems)
	if got := c.PSPushPullWire(elems, 1<<10, tensor.F64); got <= floor {
		t.Errorf("wire cost %v at or below uplink bound %v", got, floor)
	}
	// A lossy wire shrinks the bandwidth term roughly with its width.
	f64 := c.PSPushPullWire(elems, 8, tensor.F64)
	f16 := c.PSPushPullWire(elems, 8, tensor.F16)
	// The bandwidth term shrinks 4x; the latency terms don't.
	if f16 >= f64 || float64(f16) > 0.5*float64(f64) {
		t.Errorf("f16 wire %v not well below f64 %v", f16, f64)
	}
	// Degenerate inputs.
	if c.PSPushPullWire(0, 8, tensor.F64) != 0 {
		t.Error("zero elems should cost 0")
	}
	if c.PSPushPullWire(4, 100, tensor.F64) == 0 {
		t.Error("chunks clamp to elems, cost stays positive")
	}
}
