package workload

import (
	"testing"
	"time"
)

func TestOverlappedTailDegenerate(t *testing.T) {
	if got := OverlappedTail(time.Second, nil); got != 0 {
		t.Errorf("no buckets: tail = %v", got)
	}
	// Zero compute: nothing overlaps, the tail is the full serialized comm.
	comms := []time.Duration{3 * time.Millisecond, 5 * time.Millisecond, 2 * time.Millisecond}
	if got, want := OverlappedTail(0, comms), 10*time.Millisecond; got != want {
		t.Errorf("zero compute: tail = %v, want %v", got, want)
	}
	// Negative compute clamps to zero.
	if got, want := OverlappedTail(-time.Second, comms), 10*time.Millisecond; got != want {
		t.Errorf("negative compute: tail = %v, want %v", got, want)
	}
	// Compute far beyond comm: only the last bucket's collective is
	// exposed (it cannot start before the last emission, at compute end).
	if got, want := OverlappedTail(time.Hour, comms), 2*time.Millisecond; got != want {
		t.Errorf("compute-bound: tail = %v, want %v", got, want)
	}
	// One bucket: the tail is that bucket's full cost regardless of
	// compute (it launches only when compute finishes) — this is what
	// keeps sequential pricing bit-identical at OverlapBuckets <= 1.
	if got, want := OverlappedTail(7*time.Millisecond, comms[:1]), comms[0]; got != want {
		t.Errorf("single bucket: tail = %v, want %v", got, want)
	}
}

func TestOverlappedTailPipeline(t *testing.T) {
	// 4 buckets of 10ms comm each over 40ms compute: emissions at 10, 20,
	// 30, 40ms; each collective finishes just as the next emission lands,
	// so only the last bucket's 10ms spills past compute.
	comms := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond}
	if got, want := OverlappedTail(40*time.Millisecond, comms), 10*time.Millisecond; got != want {
		t.Errorf("balanced pipeline: tail = %v, want %v", got, want)
	}
	// Comm-bound: 4x10ms comm over 8ms compute. First bucket emits at
	// 2ms, then the link is busy back to back: finish = 2 + 40 = 42ms,
	// tail = 34ms — better than the 40ms serial price by the overlap of
	// the first emission.
	if got, want := OverlappedTail(8*time.Millisecond, comms), 34*time.Millisecond; got != want {
		t.Errorf("comm-bound: tail = %v, want %v", got, want)
	}
}

// TestOverlappedTailMonotonic: more compute to hide behind never increases
// the tail, and the tail never beats the last bucket's cost nor the serial
// sum.
func TestOverlappedTailMonotonic(t *testing.T) {
	comms := []time.Duration{4 * time.Millisecond, 9 * time.Millisecond, 1 * time.Millisecond, 6 * time.Millisecond}
	var serial time.Duration
	for _, c := range comms {
		serial += c
	}
	prev := serial + 1
	for compute := time.Duration(0); compute <= 60*time.Millisecond; compute += time.Millisecond {
		tail := OverlappedTail(compute, comms)
		if tail > prev {
			t.Fatalf("tail grew with compute: %v at %v (prev %v)", tail, compute, prev)
		}
		if tail > serial {
			t.Fatalf("tail %v exceeds serial sum %v", tail, serial)
		}
		if tail < comms[len(comms)-1] {
			t.Fatalf("tail %v below last bucket %v at compute %v", tail, comms[len(comms)-1], compute)
		}
		prev = tail
	}
}
