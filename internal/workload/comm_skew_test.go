package workload

import (
	"testing"

	"repro/internal/tensor"
)

// TestSkewAllReduceUniformIsRing: uniform (or invalid) weights price
// exactly the homogeneous ring — the SkewEngine's fallback.
func TestSkewAllReduceUniformIsRing(t *testing.T) {
	c := TenGbEComm()
	const n, elems = 8, 1 << 18
	want := c.RingAllReduceWire(n, elems, tensor.F64)
	for _, w := range [][]float64{
		nil,
		{1, 1, 1, 1, 1, 1, 1, 1},
		{3, 3, 3, 3, 3, 3, 3, 3},
		{1, 2},                    // wrong length
		{1, 1, 1, 1, 1, 1, 1, -4}, // invalid entry
	} {
		if got := c.SkewAllReduceWire(n, elems, tensor.F64, w); got != want {
			t.Fatalf("weights %v: got %v, want ring %v", w, got, want)
		}
	}
	if got := c.RingAllReduceSkew(n, 8*elems, nil); got != c.RingAllReduce(n, 8*elems) {
		t.Fatalf("uniform RingAllReduceSkew %v != RingAllReduce %v", got, c.RingAllReduce(n, 8*elems))
	}
}

// TestSkewAllReduceBeatsSlowRing: at 4:1 link skew the weighted exchange
// must price well below the slowest-link-paced equal ring — the virtual
// fabric's version of the benchmark gate.
func TestSkewAllReduceBeatsSlowRing(t *testing.T) {
	c := TenGbEComm()
	const n = 8
	const elems = 1 << 18 // 2 MiB of fp64
	weights := []float64{4, 4, 4, 4, 4, 4, 4, 1}
	skew := c.SkewAllReduceWire(n, elems, tensor.F64, weights)
	equal := c.RingAllReduceSkew(n, 8*elems, weights)
	if skew <= 0 || equal <= 0 {
		t.Fatalf("degenerate prices skew=%v equal=%v", skew, equal)
	}
	if ratio := float64(equal) / float64(skew); ratio < 1.4 {
		t.Fatalf("skew speedup %.2fx at 4:1, want >= 1.4x (skew %v, equal %v)", ratio, skew, equal)
	}
	// The equal ring on the skewed fabric must be slower than on the
	// homogeneous one (the slow link paces it below the mean).
	base := c.RingAllReduce(n, 8*elems)
	if equal <= base {
		t.Fatalf("skewed fabric ring %v not slower than homogeneous %v", equal, base)
	}
	if skew >= equal {
		t.Fatalf("weighted exchange %v not cheaper than slow ring %v", skew, equal)
	}
}
