package workload

import (
	"testing"
	"time"

	"repro/internal/tensor"
)

// TestAllReduceAlgoZeroValueIsRing: the zero value must price exactly like
// the historical ring so existing engine configurations are unchanged.
func TestAllReduceAlgoZeroValueIsRing(t *testing.T) {
	c := DefaultComm()
	for _, n := range []int{2, 4, 7, 16} {
		for _, bytes := range []int64{0, 4096, 3_400_000} {
			var zero AllReduceAlgo
			if got, want := c.AllReduce(zero, n, bytes), c.RingAllReduce(n, bytes); got != want {
				t.Errorf("AllReduce(zero, %d, %d) = %v, want ring %v", n, bytes, got, want)
			}
		}
	}
}

// TestAllReduceAutoIsMin: the auto price is the min of the three schedules.
func TestAllReduceAutoIsMin(t *testing.T) {
	c := TenGbEComm()
	for _, n := range []int{2, 3, 8, 12} {
		for _, bytes := range []int64{64, 8192, 1 << 22} {
			got := c.AllReduce(AllReduceAuto, n, bytes)
			min := c.RingAllReduce(n, bytes)
			for _, alt := range []time.Duration{
				c.HalvingDoublingAllReduce(n, bytes), c.TreeAllReduce(n, bytes),
			} {
				if alt < min {
					min = alt
				}
			}
			if got != min {
				t.Errorf("AllReduce(auto, %d, %d) = %v, want min %v", n, bytes, got, min)
			}
		}
	}
}

// TestAllReduceCrossover: small messages on a high-latency fabric are
// latency-dominated (log-depth schedules beat the ring); huge messages are
// bandwidth-dominated (the tree's log-factor byte volume loses).
func TestAllReduceCrossover(t *testing.T) {
	c := TenGbEComm()
	const n = 16
	smallRing := c.RingAllReduce(n, 256)
	if hd := c.HalvingDoublingAllReduce(n, 256); hd >= smallRing {
		t.Errorf("small message: halving-doubling %v should beat ring %v at n=%d", hd, smallRing, n)
	}
	if tree := c.TreeAllReduce(n, 256); tree >= smallRing {
		t.Errorf("small message: tree %v should beat ring %v at n=%d", tree, smallRing, n)
	}
	const huge = int64(1) << 28
	if tree, ring := c.TreeAllReduce(n, huge), c.RingAllReduce(n, huge); tree <= ring {
		t.Errorf("huge message: tree %v should lose to ring %v at n=%d", tree, ring, n)
	}
}

// TestHalvingDoublingFoldPenalty: a non-power-of-two rank count pays the two
// full-size fold hops.
func TestHalvingDoublingFoldPenalty(t *testing.T) {
	c := DefaultComm()
	const bytes = int64(1 << 20)
	pow2 := c.HalvingDoublingAllReduce(8, bytes)
	folded := c.HalvingDoublingAllReduce(12, bytes) // p=8 plus fold
	if folded != pow2+2*c.PointToPoint(bytes) {
		t.Errorf("fold penalty: got %v, want %v", folded, pow2+2*c.PointToPoint(bytes))
	}
}

// TestAllReduceSingleWorkerFree: every schedule is free at n=1.
func TestAllReduceSingleWorkerFree(t *testing.T) {
	c := DefaultComm()
	for _, algo := range []AllReduceAlgo{AllReduceRing, AllReduceAuto, AllReduceHalvingDoubling, AllReduceTree} {
		if d := c.AllReduce(algo, 1, 1<<20); d != 0 {
			t.Errorf("AllReduce(%v, 1 worker) = %v, want 0", algo, d)
		}
	}
}

// TestAllReduceAlgoString pins the CLI-facing names.
func TestAllReduceAlgoString(t *testing.T) {
	want := map[AllReduceAlgo]string{
		AllReduceRing: "ring", AllReduceAuto: "auto",
		AllReduceHalvingDoubling: "halving-doubling", AllReduceTree: "tree",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
}

func TestAllReduceWireF64MatchesLegacy(t *testing.T) {
	// F64 wire pricing must be bit-identical to the legacy byte model so
	// existing simulations are untouched.
	for _, c := range []CommModel{DefaultComm(), TenGbEComm()} {
		for _, algo := range []AllReduceAlgo{AllReduceRing, AllReduceAuto, AllReduceHalvingDoubling, AllReduceTree} {
			for _, n := range []int{1, 2, 3, 8, 16, 33} {
				for _, elems := range []int{0, 1, 1023, 1 << 18} {
					if got, want := c.AllReduceWire(algo, n, elems, tensor.F64), c.AllReduce(algo, n, 8*int64(elems)); got != want {
						t.Fatalf("%v n=%d elems=%d: wire=%v legacy=%v", algo, n, elems, got, want)
					}
				}
			}
		}
	}
}

func TestAllReduceWireCompressionCheaper(t *testing.T) {
	// On bandwidth-dominated transfers a narrower wire must price cheaper,
	// and wider compression must never price above narrower.
	c := DefaultComm()
	for _, algo := range []AllReduceAlgo{AllReduceRing, AllReduceAuto, AllReduceHalvingDoubling, AllReduceTree} {
		for _, n := range []int{2, 8, 16} {
			elems := 1 << 20
			f64 := c.AllReduceWire(algo, n, elems, tensor.F64)
			f32 := c.AllReduceWire(algo, n, elems, tensor.F32)
			f16 := c.AllReduceWire(algo, n, elems, tensor.F16)
			i8 := c.AllReduceWire(algo, n, elems, tensor.I8)
			if !(f32 < f64 && f16 < f32 && i8 < f16) {
				t.Fatalf("%v n=%d: f64=%v f32=%v f16=%v i8=%v not monotone", algo, n, f64, f32, f16, i8)
			}
		}
	}
}
