package workload

import (
	"testing"

	"repro/internal/tensor"
)

// TestShardHalvesComposeToRing is the sharded pricing invariant: decomposing
// the ring AllReduce into its reduce-scatter and allgather halves moves
// exactly the same bytes behind the same message count, for the exact and
// the compressed wire.
func TestShardHalvesComposeToRing(t *testing.T) {
	c := DefaultComm()
	for _, n := range []int{2, 3, 4, 8, 16} {
		for _, elems := range []int{n, 1 << 10, 1 << 18} {
			for _, wire := range []tensor.Dtype{tensor.F64, tensor.F16, tensor.I8} {
				rs := c.ReduceScatter(n, elems)
				ag := c.AllGatherWire(n, elems, wire)
				ring := c.RingAllReduceWire(n, elems, wire)
				if rs+ag != ring {
					t.Errorf("n=%d elems=%d wire=%v: RS %v + AG %v != ring %v",
						n, elems, wire, rs, ag, ring)
				}
			}
		}
	}
}

func TestShardHalvesSingleWorkerFree(t *testing.T) {
	c := DefaultComm()
	if c.ReduceScatter(1, 1024) != 0 || c.AllGatherWire(1, 1024, tensor.F64) != 0 {
		t.Error("single-rank half-collectives should be free")
	}
}
