package workload

import (
	"fmt"
	"time"
)

// CommModel prices communication operations in virtual time. It follows the
// standard α–β model: a transfer of S bytes costs Latency + S/Bandwidth.
type CommModel struct {
	// Latency is the per-message fixed cost (link latency + software
	// overhead).
	Latency time.Duration
	// Bandwidth is the network link bandwidth in bytes per second.
	Bandwidth float64
	// PCIeBandwidth is the host↔device copy bandwidth in bytes per
	// second; RNA pays one device→host and one host→device copy per
	// iteration (Table 5 overhead).
	PCIeBandwidth float64
}

// DefaultComm models the paper's testbed interconnect (Section 7.1): EDR
// InfiniBand (100 Gb/s) between nodes and PCIe 3 x16 host copies.
func DefaultComm() CommModel {
	return CommModel{
		Latency:       5 * time.Microsecond,
		Bandwidth:     12.5e9, // EDR InfiniBand, 100 Gb/s
		PCIeBandwidth: 11e9,   // PCIe 3.0 x16 effective
	}
}

// TenGbEComm models the 10 Gb Ethernet fabric of the Section 2.3 motivation
// cluster.
func TenGbEComm() CommModel {
	return CommModel{
		Latency:       50 * time.Microsecond,
		Bandwidth:     1.25e9, // 10 Gb/s
		PCIeBandwidth: 11e9,
	}
}

// transfer prices one point-to-point message of the given size.
func (c CommModel) transfer(bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	d := c.Latency
	if c.Bandwidth > 0 {
		d += time.Duration(float64(bytes) / c.Bandwidth * float64(time.Second))
	}
	return d
}

// PointToPoint returns the cost of one message of the given size.
func (c CommModel) PointToPoint(bytes int64) time.Duration {
	return c.transfer(bytes)
}

// RingAllReduce returns the cost of a ring AllReduce of a `bytes`-sized
// buffer across n workers: 2(N−1) steps each moving bytes/N — the
// bandwidth-optimal schedule of Section 2.2.
func (c CommModel) RingAllReduce(n int, bytes int64) time.Duration {
	if n <= 1 {
		return 0
	}
	chunk := bytes / int64(n)
	steps := 2 * (n - 1)
	return time.Duration(steps) * c.transfer(chunk)
}

// NaiveAllReduce returns the cost of the gather-then-broadcast alternative
// (everyone sends the full buffer to a root which broadcasts back): 2(N−1)
// full-size serialized transfers at the root's link. Used by the ablation
// bench comparing ring vs naive.
func (c CommModel) NaiveAllReduce(n int, bytes int64) time.Duration {
	if n <= 1 {
		return 0
	}
	return time.Duration(2*(n-1)) * c.transfer(bytes)
}

// Broadcast returns the cost of a binomial-tree broadcast of `bytes` to n
// workers: ceil(log2 n) serialized full-size transfers.
func (c CommModel) Broadcast(n int, bytes int64) time.Duration {
	if n <= 1 {
		return 0
	}
	steps := 0
	for span := 1; span < n; span *= 2 {
		steps++
	}
	return time.Duration(steps) * c.transfer(bytes)
}

// PSPushPull returns the cost of one push+pull round trip with a parameter
// server for `bytes` of parameters.
func (c CommModel) PSPushPull(bytes int64) time.Duration {
	return 2 * c.transfer(bytes)
}

// HostDeviceCopy returns the cost of one one-way host↔device copy.
func (c CommModel) HostDeviceCopy(bytes int64) time.Duration {
	if c.PCIeBandwidth <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / c.PCIeBandwidth * float64(time.Second))
}

// RNACopyOverhead returns RNA's per-iteration extra transmission cost: one
// device→host gradient copy before AllReduce and one host→device result
// copy after (Section 8.5).
func (c CommModel) RNACopyOverhead(gradientBytes int64) time.Duration {
	return 2 * c.HostDeviceCopy(gradientBytes)
}

// RNAOverlappedCopyOverhead returns the copy cost under the layer-wise
// overlapping Section 8.5 proposes as an optimization: per-layer copies are
// pipelined against backpropagation (device→host) and the next forward pass
// (host→device), exposing only one layer's copy in each direction.
func (c CommModel) RNAOverlappedCopyOverhead(gradientBytes int64, layers int) time.Duration {
	if layers < 1 {
		layers = 1
	}
	return 2 * c.HostDeviceCopy(gradientBytes/int64(layers))
}

// String implements fmt.Stringer.
func (c CommModel) String() string {
	return fmt.Sprintf("comm(lat=%v bw=%.2gGB/s pcie=%.2gGB/s)",
		c.Latency, c.Bandwidth/1e9, c.PCIeBandwidth/1e9)
}
