package workload

import (
	"fmt"
	"time"

	"repro/internal/tensor"
)

// CommModel prices communication operations in virtual time. It follows the
// standard α–β model: a transfer of S bytes costs Latency + S/Bandwidth.
type CommModel struct {
	// Latency is the per-message fixed cost (link latency + software
	// overhead).
	Latency time.Duration
	// Bandwidth is the network link bandwidth in bytes per second.
	Bandwidth float64
	// PCIeBandwidth is the host↔device copy bandwidth in bytes per
	// second; RNA pays one device→host and one host→device copy per
	// iteration (Table 5 overhead).
	PCIeBandwidth float64
}

// DefaultComm models the paper's testbed interconnect (Section 7.1): EDR
// InfiniBand (100 Gb/s) between nodes and PCIe 3 x16 host copies.
func DefaultComm() CommModel {
	return CommModel{
		Latency:       5 * time.Microsecond,
		Bandwidth:     12.5e9, // EDR InfiniBand, 100 Gb/s
		PCIeBandwidth: 11e9,   // PCIe 3.0 x16 effective
	}
}

// TenGbEComm models the 10 Gb Ethernet fabric of the Section 2.3 motivation
// cluster.
func TenGbEComm() CommModel {
	return CommModel{
		Latency:       50 * time.Microsecond,
		Bandwidth:     1.25e9, // 10 Gb/s
		PCIeBandwidth: 11e9,
	}
}

// transfer prices one point-to-point message of the given size.
func (c CommModel) transfer(bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	d := c.Latency
	if c.Bandwidth > 0 {
		d += time.Duration(float64(bytes) / c.Bandwidth * float64(time.Second))
	}
	return d
}

// PointToPoint returns the cost of one message of the given size.
func (c CommModel) PointToPoint(bytes int64) time.Duration {
	return c.transfer(bytes)
}

// RingAllReduce returns the cost of a ring AllReduce of a `bytes`-sized
// buffer across n workers: 2(N−1) steps each moving bytes/N — the
// bandwidth-optimal schedule of Section 2.2.
func (c CommModel) RingAllReduce(n int, bytes int64) time.Duration {
	if n <= 1 {
		return 0
	}
	chunk := bytes / int64(n)
	steps := 2 * (n - 1)
	return time.Duration(steps) * c.transfer(chunk)
}

// AllReduceAlgo selects which collective schedule CommModel prices for an
// AllReduce. The zero value is the ring — the paper's schedule and the
// historical behavior of every engine — so existing configurations are
// unchanged; AllReduceAuto opts a simulation into cost-model-driven
// selection, mirroring collective.AllReduce's runtime selector.
type AllReduceAlgo int

// Priced schedules.
const (
	// AllReduceRing is the 2(N−1)-step bandwidth-optimal ring.
	AllReduceRing AllReduceAlgo = iota
	// AllReduceAuto prices the cheapest schedule at each (n, bytes).
	AllReduceAuto
	// AllReduceHalvingDoubling is recursive halving-doubling.
	AllReduceHalvingDoubling
	// AllReduceTree is binomial-tree reduce + broadcast.
	AllReduceTree
)

// String implements fmt.Stringer.
func (a AllReduceAlgo) String() string {
	switch a {
	case AllReduceRing:
		return "ring"
	case AllReduceAuto:
		return "auto"
	case AllReduceHalvingDoubling:
		return "halving-doubling"
	case AllReduceTree:
		return "tree"
	default:
		return fmt.Sprintf("allreduce-algo(%d)", int(a))
	}
}

// HalvingDoublingAllReduce returns the cost of a recursive halving-doubling
// AllReduce: 2·log2(p) steps moving bytes/2, bytes/4, … (p the largest
// power of two ≤ n), plus a fold-in pre/post phase of two full-size
// transfers when n is not a power of two. Latency-optimal among
// bandwidth-optimal schedules: 2·log2(p) message latencies vs the ring's
// 2(n−1).
func (c CommModel) HalvingDoublingAllReduce(n int, bytes int64) time.Duration {
	if n <= 1 {
		return 0
	}
	p := 1
	for p<<1 <= n {
		p <<= 1
	}
	var d time.Duration
	if p != n {
		d += 2 * c.transfer(bytes)
	}
	for half := bytes / 2; p > 1; p >>= 1 {
		d += 2 * c.transfer(half)
		half /= 2
	}
	return d
}

// TreeAllReduce returns the cost of a binomial-tree reduce-to-root plus
// broadcast: 2·⌈log2 n⌉ serialized full-size transfers. The fewest
// messages of any dense schedule, at log-factor extra byte volume — the
// small-tensor schedule.
func (c CommModel) TreeAllReduce(n int, bytes int64) time.Duration {
	if n <= 1 {
		return 0
	}
	steps := 0
	for span := 1; span < n; span <<= 1 {
		steps++
	}
	return time.Duration(2*steps) * c.transfer(bytes)
}

// AllReduce prices one AllReduce under the given schedule; AllReduceAuto
// returns the cheapest, mirroring the runtime selector in
// internal/collective.
func (c CommModel) AllReduce(algo AllReduceAlgo, n int, bytes int64) time.Duration {
	switch algo {
	case AllReduceHalvingDoubling:
		return c.HalvingDoublingAllReduce(n, bytes)
	case AllReduceTree:
		return c.TreeAllReduce(n, bytes)
	case AllReduceAuto:
		best := c.RingAllReduce(n, bytes)
		if t := c.HalvingDoublingAllReduce(n, bytes); t < best {
			best = t
		}
		if t := c.TreeAllReduce(n, bytes); t < best {
			best = t
		}
		return best
	default:
		return c.RingAllReduce(n, bytes)
	}
}

// bytesCost prices the bandwidth term of a transfer without the per-message
// latency — wire-aware schedules need the two split because compressed
// phases can carry a different message count than byte volume implies.
func (c CommModel) bytesCost(bytes int64) time.Duration {
	if c.Bandwidth <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / c.Bandwidth * float64(time.Second))
}

// RingAllReduceWire prices the ring with a compressed distribution phase:
// the (N−1) reduce-scatter steps ship fp64 partial sums, the (N−1) allgather
// steps ship the wire dtype. Mirrors collective.ringShapeWire.
func (c CommModel) RingAllReduceWire(n int, elems int, wire tensor.Dtype) time.Duration {
	if n <= 1 {
		return 0
	}
	chunk := elems / n
	steps := time.Duration(n - 1)
	return steps*c.transfer(8*int64(chunk)) + steps*c.transfer(int64(wire.WireBytes(chunk)))
}

// HalvingDoublingAllReduceWire prices halving-doubling with a compressed
// doubling phase. Halving windows carry fp64 partial sums; the doubling
// window at level ℓ (size elems·2^ℓ/p) ships the wire dtype — as one message
// for per-element dtypes, as 2^ℓ block-aligned sub-messages for I8 (see
// collective.forEachSubWindow). Fold-in/out for non-power-of-two n stays
// fp64 full-size.
func (c CommModel) HalvingDoublingAllReduceWire(n int, elems int, wire tensor.Dtype) time.Duration {
	if n <= 1 {
		return 0
	}
	p := 1
	for p<<1 <= n {
		p <<= 1
	}
	var d time.Duration
	if p != n {
		d += 2 * c.transfer(8*int64(elems))
	}
	q := p
	for half := elems / 2; q > 1; q >>= 1 {
		d += c.transfer(8 * int64(half)) // halving: fp64
		half /= 2
	}
	subMsgs := 1
	for w, q := elems/p, p; q > 1; q >>= 1 { // doubling: wire dtype
		m := 1
		if !wire.PerElement() {
			m = subMsgs
		}
		d += time.Duration(m)*c.Latency + c.bytesCost(int64(wire.WireBytes(w)))
		w *= 2
		subMsgs *= 2
	}
	return d
}

// TreeAllReduceWire prices the binomial tree with a compressed broadcast:
// the reduce-to-root steps ship fp64 full vectors, the broadcast steps ship
// the wire dtype.
func (c CommModel) TreeAllReduceWire(n int, elems int, wire tensor.Dtype) time.Duration {
	if n <= 1 {
		return 0
	}
	steps := 0
	for span := 1; span < n; span <<= 1 {
		steps++
	}
	return time.Duration(steps)*c.transfer(8*int64(elems)) +
		time.Duration(steps)*c.transfer(int64(wire.WireBytes(elems)))
}

// AllReduceWire prices one AllReduce of `elems` fp64 elements whose
// distribution phase ships the given wire dtype. For tensor.F64 it agrees
// exactly with AllReduce(algo, n, 8·elems), preserving every existing
// simulation; AllReduceAuto returns the cheapest schedule under the wire,
// mirroring collective.SelectAlgorithmWire.
func (c CommModel) AllReduceWire(algo AllReduceAlgo, n int, elems int, wire tensor.Dtype) time.Duration {
	if wire == tensor.F64 {
		return c.AllReduce(algo, n, 8*int64(elems))
	}
	switch algo {
	case AllReduceHalvingDoubling:
		return c.HalvingDoublingAllReduceWire(n, elems, wire)
	case AllReduceTree:
		return c.TreeAllReduceWire(n, elems, wire)
	case AllReduceAuto:
		best := c.RingAllReduceWire(n, elems, wire)
		if t := c.HalvingDoublingAllReduceWire(n, elems, wire); t < best {
			best = t
		}
		if t := c.TreeAllReduceWire(n, elems, wire); t < best {
			best = t
		}
		return best
	default:
		return c.RingAllReduceWire(n, elems, wire)
	}
}

// ReduceScatter prices the reduction half of the sharded owner-computes
// update: n−1 serialized direct messages, each carrying this rank's fp64
// share of one uniform chunk (elems/n elements). By construction
// ReduceScatter + AllGatherWire == RingAllReduceWire exactly — decomposing
// the ring into its two halves moves no extra bytes, so a simulation that
// swaps a fused AllReduce for the sharded pair pays only the owned-shard
// optimizer time on top.
func (c CommModel) ReduceScatter(n int, elems int) time.Duration {
	if n <= 1 {
		return 0
	}
	return time.Duration(n-1) * c.transfer(8*int64(elems/n))
}

// AllGatherWire prices the parameter-distribution half of the sharded
// update: n−1 serialized direct messages, each carrying one wire-encoded
// uniform chunk. See ReduceScatter for the composition invariant.
func (c CommModel) AllGatherWire(n int, elems int, wire tensor.Dtype) time.Duration {
	if n <= 1 {
		return 0
	}
	return time.Duration(n-1) * c.transfer(int64(wire.WireBytes(elems/n)))
}

// TopKAllReduce prices the sparse index+value exchange of
// collective.TopKAllReduce: a binomial tree reduces each rank's top-k
// entries to a root, then a binomial broadcast ships the merged union
// back. Each entry costs 12 wire bytes (int32 index + fp64 value). Frame
// sizes grow as unions accumulate up the tree — at reduce depth i a frame
// carries at most min(k·2^i, elems) entries; every broadcast frame
// carries the final union of at most min(n·k, elems) entries. Unions are
// priced at their worst case (no index overlap), so the model is an upper
// bound that converges to the true cost as gradients decorrelate.
func (c CommModel) TopKAllReduce(n int, elems, k int) time.Duration {
	if n <= 1 || elems <= 0 {
		return 0
	}
	if k > elems {
		k = elems
	}
	if k <= 0 {
		return 0
	}
	const entryBytes = 12 // 4-byte index + 8-byte fp64 value
	var d time.Duration
	entries := k
	for span := 1; span < n; span <<= 1 {
		d += c.transfer(int64(entryBytes * entries))
		if entries *= 2; entries > elems {
			entries = elems
		}
	}
	union := n * k
	if union > elems {
		union = elems
	}
	return d + c.Broadcast(n, int64(entryBytes*union))
}

// skewShares normalizes per-rank link weights to mean 1 and reports the
// minimum normalized weight. A nil/short/invalid weight vector returns
// (nil, 1): the fabric is priced as homogeneous.
func skewShares(n int, weights []float64) ([]float64, float64) {
	if n <= 1 || len(weights) != n {
		return nil, 1
	}
	var sum float64
	uniform := true
	for _, w := range weights {
		if !(w > 0) {
			return nil, 1
		}
		if w != weights[0] {
			uniform = false
		}
		sum += w
	}
	if uniform {
		// A uniform fabric is priced as the plain ring — the engine's
		// fallback path, bit-identical schedule and all.
		return nil, 1
	}
	mean := sum / float64(n)
	norm := make([]float64, n)
	min := weights[0] / mean
	for i, w := range weights {
		norm[i] = w / mean
		if norm[i] < min {
			min = norm[i]
		}
	}
	return norm, min
}

// RingAllReduceSkew prices the equal-chunk ring on a heterogeneous fabric:
// every rank relays the same byte volume, so the slowest link — the
// smallest weight relative to the mean (the calibrated Bandwidth) — paces
// the whole schedule. Uniform weights reduce exactly to RingAllReduce.
func (c CommModel) RingAllReduceSkew(n int, bytes int64, weights []float64) time.Duration {
	base := c.RingAllReduce(n, bytes)
	_, min := skewShares(n, weights)
	return time.Duration(float64(base) / min)
}

// SkewAllReduceWire prices the skew-aware weighted direct exchange of
// internal/collective's SkewEngine: chunk shares proportional to the link
// weights, one-hop reduce-scatter shipping fp64 partial inputs, owner-side
// quantization, one-hop allgather shipping the wire dtype. Rank r's
// critical path is its own serialized traffic — (B − b_r) scatter bytes
// plus (n−1)·b_r gather bytes over a link running at w_r/mean(w) times the
// calibrated Bandwidth, behind 2(n−1) message latencies — and the
// collective finishes when the slowest rank does. Mirrors
// collective.CostModel.PredictSkewWireNs.
func (c CommModel) SkewAllReduceWire(n int, elems int, wire tensor.Dtype, weights []float64) time.Duration {
	if n <= 1 {
		return 0
	}
	norm, _ := skewShares(n, weights)
	if norm == nil {
		return c.RingAllReduceWire(n, elems, wire)
	}
	var worst time.Duration
	msgs := time.Duration(2 * (n - 1))
	for _, w := range norm {
		chunk := int(float64(elems) * w / float64(n))
		t := msgs*c.Latency + time.Duration(float64(c.bytesCost(8*int64(elems-chunk))+c.bytesCost(int64((n-1)*wire.WireBytes(chunk))))/w)
		if t > worst {
			worst = t
		}
	}
	return worst
}

// SkewAllReduce is SkewAllReduceWire for an uncompressed fp64 payload of
// the given byte size.
func (c CommModel) SkewAllReduce(n int, bytes int64, weights []float64) time.Duration {
	return c.SkewAllReduceWire(n, int(bytes/8), tensor.F64, weights)
}

// NaiveAllReduce returns the cost of the gather-then-broadcast alternative
// (everyone sends the full buffer to a root which broadcasts back): 2(N−1)
// full-size serialized transfers at the root's link. Used by the ablation
// bench comparing ring vs naive.
func (c CommModel) NaiveAllReduce(n int, bytes int64) time.Duration {
	if n <= 1 {
		return 0
	}
	return time.Duration(2*(n-1)) * c.transfer(bytes)
}

// Broadcast returns the cost of a binomial-tree broadcast of `bytes` to n
// workers: ceil(log2 n) serialized full-size transfers.
func (c CommModel) Broadcast(n int, bytes int64) time.Duration {
	if n <= 1 {
		return 0
	}
	steps := 0
	for span := 1; span < n; span *= 2 {
		steps++
	}
	return time.Duration(steps) * c.transfer(bytes)
}

// PSPushPull returns the cost of one push+pull round trip with a parameter
// server for `bytes` of parameters — the monolithic (unchunked, f64)
// exchange. PSPushPullWire prices the pipelined wire protocol.
func (c CommModel) PSPushPull(bytes int64) time.Duration {
	return 2 * c.transfer(bytes)
}

// PSPushPullWire prices one chunked push-pull against the networked
// parameter server (internal/ps wire protocol): the model's elems split
// into `chunks` request frames at the wire dtype, pushed back-to-back on
// the uplink while acks stream back on the downlink. Chunk i's ack can
// start only after its push finishes and the previous ack has drained
// (full-duplex link, serialized per direction), so with symmetric chunk
// sizes the pipeline hides all but one ack behind the pushes:
//
//	pushDone_i = pushDone_{i-1} + B(chunk)
//	ackDone_i  = max(ackDone_{i-1}, pushDone_i + Latency) + B(chunk)
//
// where B is the bandwidth term. With chunks = 1 this degenerates to the
// monolithic round trip (one latency charged per direction).
func (c CommModel) PSPushPullWire(elems int, chunks int, wire tensor.Dtype) time.Duration {
	if elems <= 0 {
		return 0
	}
	if chunks < 1 {
		chunks = 1
	}
	if chunks > elems {
		chunks = elems
	}
	var pushDone, ackDone time.Duration
	pushDone = c.Latency // connection/head-of-line latency of the first frame
	for i := 0; i < chunks; i++ {
		span := elems / chunks
		if i < elems%chunks {
			span++
		}
		b := c.bytesCost(int64(wire.WireBytes(span)))
		pushDone += b
		ready := pushDone + c.Latency
		if ackDone > ready {
			ready = ackDone
		}
		ackDone = ready + b
	}
	return ackDone
}

// HostDeviceCopy returns the cost of one one-way host↔device copy.
func (c CommModel) HostDeviceCopy(bytes int64) time.Duration {
	if c.PCIeBandwidth <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / c.PCIeBandwidth * float64(time.Second))
}

// RNACopyOverhead returns RNA's per-iteration extra transmission cost: one
// device→host gradient copy before AllReduce and one host→device result
// copy after (Section 8.5).
func (c CommModel) RNACopyOverhead(gradientBytes int64) time.Duration {
	return 2 * c.HostDeviceCopy(gradientBytes)
}

// RNAOverlappedCopyOverhead returns the copy cost under the layer-wise
// overlapping Section 8.5 proposes as an optimization: per-layer copies are
// pipelined against backpropagation (device→host) and the next forward pass
// (host→device), exposing only one layer's copy in each direction.
func (c CommModel) RNAOverlappedCopyOverhead(gradientBytes int64, layers int) time.Duration {
	if layers < 1 {
		layers = 1
	}
	return 2 * c.HostDeviceCopy(gradientBytes/int64(layers))
}

// OverlappedTail prices a comm/compute-overlapped step: compute runs for
// `compute` emitting len(comms) gradient buckets at evenly spaced points,
// and bucket b's collective (cost comms[b]) starts as soon as both the
// bucket is emitted and the previous bucket's collective finished (the
// collectives share one link, so they serialize in launch order — the
// pipeline's bottleneck resource). The returned duration is the
// communication tail left over after compute ends:
//
//	emit_b   = compute · (b+1)/B
//	finish_b = max(emit_b, finish_{b−1}) + comms[b]
//	tail     = max(finish_{B−1}, compute) − compute
//
// Degenerate cases recover the familiar prices: compute = 0 gives Σ comms
// (fully sequential), compute ≫ Σ comms gives comms[B−1] (only the last
// bucket's collective is exposed). An overlapped step then costs
// compute + OverlappedTail instead of compute + Σ comms.
func OverlappedTail(compute time.Duration, comms []time.Duration) time.Duration {
	if len(comms) == 0 {
		return 0
	}
	if compute < 0 {
		compute = 0
	}
	b := len(comms)
	var finish time.Duration
	for i, c := range comms {
		emit := time.Duration(float64(compute) * float64(i+1) / float64(b))
		if emit > finish {
			finish = emit
		}
		finish += c
	}
	if finish < compute {
		finish = compute
	}
	return finish - compute
}

// String implements fmt.Stringer.
func (c CommModel) String() string {
	return fmt.Sprintf("comm(lat=%v bw=%.2gGB/s pcie=%.2gGB/s)",
		c.Latency, c.Bandwidth/1e9, c.PCIeBandwidth/1e9)
}
