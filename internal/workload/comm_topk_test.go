package workload

import (
	"testing"
	"time"
)

// TestTopKAllReducePinned hand-checks the sparse exchange price: binomial
// reduce with doubling unions, then a binomial broadcast of the full union
// at 12 bytes per (index, value) entry.
func TestTopKAllReducePinned(t *testing.T) {
	c := CommModel{Latency: time.Microsecond, Bandwidth: 1e9}
	// n=4, elems=100, k=2: reduce frames of 2 then 4 entries, broadcast
	// 2 steps of the 8-entry union.
	want := c.transfer(24) + c.transfer(48) + 2*c.transfer(96)
	if got := c.TopKAllReduce(4, 100, 2); got != want {
		t.Errorf("TopKAllReduce(4, 100, 2) = %v, want %v", got, want)
	}
	// Union and frame sizes clamp at elems: with k == elems every frame is
	// a dense 12·elems payload.
	dense := c.transfer(120) + c.transfer(120) + 2*c.transfer(120)
	if got := c.TopKAllReduce(4, 10, 10); got != dense {
		t.Errorf("TopKAllReduce(4, 10, 10) = %v, want %v", got, dense)
	}
	if got := c.TopKAllReduce(4, 10, 99); got != dense {
		t.Errorf("k > elems must clamp: got %v, want %v", got, dense)
	}
}

// TestTopKAllReduceDegenerate: no ranks, no elements or no selection means
// no traffic.
func TestTopKAllReduceDegenerate(t *testing.T) {
	c := DefaultComm()
	for _, tc := range [][3]int{{1, 1024, 8}, {4, 0, 8}, {4, 1024, 0}, {4, 1024, -3}} {
		if got := c.TopKAllReduce(tc[0], tc[1], tc[2]); got != 0 {
			t.Errorf("TopKAllReduce(%v) = %v, want 0", tc, got)
		}
	}
}

// TestTopKAllReduceSparsitySaves: the point of shipping indices — at high
// sparsity the sparse exchange must undercut every dense schedule, and the
// price must grow with k.
func TestTopKAllReduceSparsitySaves(t *testing.T) {
	c := TenGbEComm()
	const n, elems = 8, 1 << 20
	sparse := c.TopKAllReduce(n, elems, elems/256)
	if dense := c.AllReduce(AllReduceAuto, n, 8*elems); sparse >= dense {
		t.Errorf("top-k (%v) not cheaper than dense auto (%v) at 1/256 density", sparse, dense)
	}
	prev := time.Duration(0)
	for _, k := range []int{64, 1 << 10, 1 << 14, elems} {
		d := c.TopKAllReduce(n, elems, k)
		if d < prev {
			t.Errorf("price not monotone in k: k=%d costs %v < %v", k, d, prev)
		}
		prev = d
	}
}
