// Package workload models the deep-learning jobs the paper evaluates as
// cost models: each model contributes a parameter count (which determines
// AllReduce message sizes) and a per-batch compute-time distribution (which
// determines who straggles). The distributions are calibrated to the
// statistics the paper reports — e.g. the UCF101/LSTM batch times of Fig. 2
// have mean 1219 ms, standard deviation 760 ms, and range 156–8000 ms.
package workload

import (
	"fmt"
	"time"

	"repro/internal/rng"
)

// ModelSpec describes one neural network as seen by the synchronization
// layer: how many parameters it ships per AllReduce and how long a training
// step takes on the reference accelerator.
type ModelSpec struct {
	// Name is the model's display name (e.g. "ResNet50").
	Name string
	// Params is the number of trainable parameters.
	Params int64
	// BytesPerParam is the wire size of one parameter (4 for float32, as
	// in the paper's TensorFlow setup).
	BytesPerParam int64
	// BaseStep is the mean compute time of one training step on an
	// unloaded reference GPU.
	BaseStep time.Duration
	// Dataset names the dataset the paper pairs with the model.
	Dataset string
	// BatchSize is the per-worker batch size from the paper's setup.
	BatchSize int
	// Layers is the number of gradient-producing layers; layer-wise
	// overlapping (Section 8.5's proposed optimization) pipelines
	// host-device copies against backpropagation at this granularity.
	Layers int
}

// GradientBytes returns the wire size of one full gradient.
func (m ModelSpec) GradientBytes() int64 { return m.Params * m.BytesPerParam }

// String implements fmt.Stringer.
func (m ModelSpec) String() string {
	return fmt.Sprintf("%s(%dM params, %v/step, %s)",
		m.Name, m.Params/1_000_000, m.BaseStep, m.Dataset)
}

// The model zoo matches Section 7.2 of the paper. Parameter counts are the
// exact figures the paper quotes; base step times are calibrated so the
// relative system-overhead percentages of Table 5 keep their shape.

// ResNet50 is the ImageNet image-classification model (25,559,081 params).
func ResNet50() ModelSpec {
	return ModelSpec{
		Name: "ResNet50", Params: 25_559_081, BytesPerParam: 4,
		BaseStep: 280 * time.Millisecond, Dataset: "ImageNet", BatchSize: 128, Layers: 50,
	}
}

// VGG16 is the communication-intensive CIFAR-10 model (~138M params).
func VGG16() ModelSpec {
	return ModelSpec{
		Name: "VGG16", Params: 138_344_128, BytesPerParam: 4,
		BaseStep: 330 * time.Millisecond, Dataset: "CIFAR-10", BatchSize: 128, Layers: 16,
	}
}

// ResNet56 is the small CIFAR-10 model used in the Fig. 1 motivation study.
func ResNet56() ModelSpec {
	return ModelSpec{
		Name: "ResNet56", Params: 855_770, BytesPerParam: 4,
		BaseStep: 50 * time.Millisecond, Dataset: "CIFAR-10", BatchSize: 128, Layers: 56,
	}
}

// LSTM is the 4096-wide video-classification model on UCF101
// (34,663,525 params). Its step times are dominated by input video length;
// use VideoBatchSampler for the Fig. 2 distribution.
func LSTM() ModelSpec {
	return ModelSpec{
		Name: "LSTM", Params: 34_663_525, BytesPerParam: 4,
		BaseStep: 1219 * time.Millisecond, Dataset: "UCF101", BatchSize: 128, Layers: 2,
	}
}

// Transformer is the WMT17 English–German translation model
// (61,362,176 params) trained with 4,096-token batches.
func Transformer() ModelSpec {
	return ModelSpec{
		Name: "Transformer", Params: 61_362_176, BytesPerParam: 4,
		BaseStep: 220 * time.Millisecond, Dataset: "WMT17", BatchSize: 4096, Layers: 12,
	}
}

// InceptionV3 is the feature extractor the paper uses to preprocess UCF101.
func InceptionV3() ModelSpec {
	return ModelSpec{
		Name: "InceptionV3", Params: 23_851_784, BytesPerParam: 4,
		BaseStep: 180 * time.Millisecond, Dataset: "UCF101", BatchSize: 32, Layers: 48,
	}
}

// ByName resolves a model spec from its name, case-sensitively.
func ByName(name string) (ModelSpec, error) {
	for _, m := range []ModelSpec{
		ResNet50(), VGG16(), ResNet56(), LSTM(), Transformer(), InceptionV3(),
	} {
		if m.Name == name {
			return m, nil
		}
	}
	return ModelSpec{}, fmt.Errorf("workload: unknown model %q", name)
}

// StepSampler draws per-batch compute times.
type StepSampler interface {
	// Sample returns the compute time of one training step.
	Sample(src *rng.Source) time.Duration
	// Mean returns the sampler's expected step time.
	Mean() time.Duration
}

// Balanced samples a base step time with small multiplicative jitter — the
// preprocessed, size-normalized batches of ResNet50/ImageNet and
// VGG16/CIFAR-10.
type Balanced struct {
	Base   time.Duration
	Jitter float64 // fractional half-width, e.g. 0.05 for ±5%
}

var _ StepSampler = Balanced{}

// Sample implements StepSampler.
func (b Balanced) Sample(src *rng.Source) time.Duration {
	f := 1 + src.Uniform(-b.Jitter, b.Jitter)
	if f < 0 {
		f = 0
	}
	return time.Duration(float64(b.Base) * f)
}

// Mean implements StepSampler.
func (b Balanced) Mean() time.Duration { return b.Base }

// LongTail samples lognormal step times matched to the given arithmetic
// moments and clamped to [Min, Max] — the inherent load imbalance of
// dynamic networks (Fig. 2).
type LongTail struct {
	MeanStep time.Duration
	StdDev   time.Duration
	Min, Max time.Duration
}

var _ StepSampler = LongTail{}

// Sample implements StepSampler.
func (l LongTail) Sample(src *rng.Source) time.Duration {
	ms := src.LogNormalFromMoments(
		float64(l.MeanStep)/float64(time.Millisecond),
		float64(l.StdDev)/float64(time.Millisecond),
	)
	d := time.Duration(ms * float64(time.Millisecond))
	if d < l.Min {
		return l.Min
	}
	if l.Max > 0 && d > l.Max {
		return l.Max
	}
	return d
}

// Mean implements StepSampler.
func (l LongTail) Mean() time.Duration { return l.MeanStep }

// VideoBatchSampler reproduces the LSTM/UCF101 batch-time distribution of
// Fig. 2(b): mean 1219 ms, stddev 760 ms, range 156 ms – 8000 ms.
func VideoBatchSampler() LongTail {
	return LongTail{
		MeanStep: 1219 * time.Millisecond,
		StdDev:   760 * time.Millisecond,
		Min:      156 * time.Millisecond,
		Max:      8000 * time.Millisecond,
	}
}

// SentenceBatchSampler models Transformer step times under variable-length
// WMT17 sentences: a 4,096-token batch mixes sentences of different length,
// so the variance is milder than video (coefficient of variation ≈ 0.25).
func SentenceBatchSampler(base time.Duration) LongTail {
	return LongTail{
		MeanStep: base,
		StdDev:   time.Duration(float64(base) * 0.25),
		Min:      base / 4,
		Max:      base * 4,
	}
}

// VideoLengthFrames samples a UCF101 video length in frames, matching the
// paper's Fig. 2(a): mean 186, stddev 97.7, range 29–1776.
func VideoLengthFrames(src *rng.Source) float64 {
	f := src.LogNormalFromMoments(186, 97.7)
	if f < 29 {
		return 29
	}
	if f > 1776 {
		return 1776
	}
	return f
}
